//===- CacheState.cpp -----------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "domain/CacheState.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <map>

using namespace specai;

namespace {

/// Binary search for a block in a sorted AgedBlock vector; returns the
/// iterator (end if absent is signaled by block mismatch).
std::vector<AgedBlock>::const_iterator find(const std::vector<AgedBlock> &Vec,
                                            BlockAddr Block) {
  auto It = std::lower_bound(
      Vec.begin(), Vec.end(), Block,
      [](const AgedBlock &E, BlockAddr B) { return E.Block < B; });
  if (It != Vec.end() && It->Block == Block)
    return It;
  return Vec.end();
}

/// Inserts or overwrites (Block -> Age), keeping the vector sorted.
void setAge(std::vector<AgedBlock> &Vec, BlockAddr Block, uint16_t Age) {
  auto It = std::lower_bound(
      Vec.begin(), Vec.end(), Block,
      [](const AgedBlock &E, BlockAddr B) { return E.Block < B; });
  if (It != Vec.end() && It->Block == Block) {
    It->Age = Age;
    return;
  }
  Vec.insert(It, AgedBlock{Block, Age});
}

/// Age of \p Block in a sorted entry vector; \p Assoc + 1 when absent.
uint32_t ageIn(const std::vector<AgedBlock> &Vec, BlockAddr Block,
               uint32_t Assoc) {
  auto It = find(Vec, Block);
  return It == Vec.end() ? Assoc + 1 : It->Age;
}

/// Partition lookup in a set-sorted partition vector.
std::vector<CacheSetPartition>::const_iterator
findPartIn(const std::vector<CacheSetPartition> &Parts, uint32_t Set) {
  auto It = std::lower_bound(
      Parts.begin(), Parts.end(), Set,
      [](const CacheSetPartition &P, uint32_t S) { return P.Set < S; });
  if (It != Parts.end() && It->Set == Set)
    return It;
  return Parts.end();
}

/// Find-or-insert the partition of \p Set, keeping the vector set-sorted.
/// Returns an index (not a reference: the insert may reallocate).
size_t ensurePart(std::vector<CacheSetPartition> &Parts, uint32_t Set) {
  auto It = std::lower_bound(
      Parts.begin(), Parts.end(), Set,
      [](const CacheSetPartition &P, uint32_t S) { return P.Set < S; });
  if (It == Parts.end() || It->Set != Set)
    It = Parts.insert(It, CacheSetPartition{Set, {}, {}});
  return static_cast<size_t>(It - Parts.begin());
}

uint64_t splitmix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

} // namespace

const std::vector<CacheSetPartition> &CacheAbsState::emptyParts() {
  static const std::vector<CacheSetPartition> Empty;
  return Empty;
}

CacheAbsState::Payload &CacheAbsState::mut() {
  if (!P)
    P = std::make_shared<Payload>();
  else if (P.use_count() > 1)
    P = std::make_shared<Payload>(*P);
  P->HashKnown = false;
  return *P;
}

void CacheAbsState::normalize() {
  if (!P)
    return;
  // A shared payload is never mutated here: partitions only need scrubbing
  // after a mutator, which already unshared.
  std::vector<CacheSetPartition> &Parts = P->Parts;
  Parts.erase(std::remove_if(Parts.begin(), Parts.end(),
                             [](const CacheSetPartition &Part) {
                               return Part.Must.empty() && Part.May.empty();
                             }),
              Parts.end());
  if (Parts.empty())
    P.reset();
}

const CacheSetPartition *CacheAbsState::findPart(uint32_t Set) const {
  if (!P)
    return nullptr;
  auto It = findPartIn(P->Parts, Set);
  return It == P->Parts.end() ? nullptr : &*It;
}

uint32_t CacheAbsState::mustAge(BlockAddr Block, uint32_t Assoc) const {
  // The block's set is unknown here (no MemoryModel); a block lives in
  // exactly one partition, so probe each. Partition counts are tiny (one
  // for fully associative geometries).
  for (const CacheSetPartition &Part : partitions()) {
    auto It = find(Part.Must, Block);
    if (It != Part.Must.end())
      return It->Age;
  }
  return Assoc + 1;
}

uint32_t CacheAbsState::mayAge(BlockAddr Block, uint32_t Assoc) const {
  for (const CacheSetPartition &Part : partitions()) {
    auto It = find(Part.May, Block);
    if (It != Part.May.end())
      return It->Age;
  }
  return Assoc + 1;
}

bool CacheAbsState::isMustCached(BlockAddr Block) const {
  for (const CacheSetPartition &Part : partitions())
    if (find(Part.Must, Block) != Part.Must.end())
      return true;
  return false;
}

void CacheAbsState::accessBlock(BlockAddr Block, const MemoryModel &MM,
                                bool UseShadow) {
  assert(!Bottom && "transfer on bottom state");
  switch (MM.config().Policy) {
  case ReplacementPolicy::Lru:
    return accessBlockLru(Block, MM, UseShadow);
  case ReplacementPolicy::Fifo:
    return accessBlockFifo(Block, MM, UseShadow);
  case ReplacementPolicy::Plru:
    return accessBlockPlru(Block, MM, UseShadow);
  }
}

void CacheAbsState::accessBlockLru(BlockAddr Block, const MemoryModel &MM,
                                   bool UseShadow) {
  uint32_t Assoc = MM.config().Associativity;
  uint32_t Set = MM.setOf(Block);

  // Previous ages, read before any update. Only the accessed set's
  // partition can hold the block.
  const CacheSetPartition *Old = findPart(Set);
  uint32_t VMustOld = Old ? ageIn(Old->Must, Block, Assoc) : Assoc + 1;
  uint32_t VMayOld = Old ? ageIn(Old->May, Block, Assoc) : Assoc + 1;

  Payload &PL = mut();
  CacheSetPartition &Part = PL.Parts[ensurePart(PL.Parts, Set)];

  if (UseShadow) {
    // MAY (shadow) update first, Appendix B: ∃u with Age(∃u) <= Age(∃v)
    // ages by one; older shadows keep their age. The partition holds only
    // this set's entries, so no per-entry set check is needed.
    std::vector<AgedBlock> &May = Part.May;
    for (size_t I = 0; I != May.size();) {
      AgedBlock &U = May[I];
      if (U.Block != Block && U.Age <= VMayOld) {
        if (++U.Age > Assoc) {
          May.erase(May.begin() + static_cast<ptrdiff_t>(I));
          continue; // Do not advance; erased current element.
        }
      }
      ++I;
    }
    setAge(May, Block, 1);
  }

  // MUST update. With shadows, the refined rule (Appendix B): u ages only
  // when at least Age(u) shadow blocks (other than u) are at least as young
  // as u — otherwise younger lines cannot fill u's set far enough to push
  // it out one position.
  std::vector<AgedBlock> &Must = Part.Must;
  for (size_t I = 0; I != Must.size();) {
    AgedBlock &U = Must[I];
    if (U.Block != Block && U.Age < VMustOld) {
      bool ShouldAge = true;
      if (UseShadow) {
        uint32_t NYoung = 0;
        for (const AgedBlock &W : Part.May) {
          if (W.Block == U.Block)
            continue;
          if (W.Age <= U.Age)
            ++NYoung;
        }
        ShouldAge = NYoung >= U.Age;
      }
      if (ShouldAge && ++U.Age > Assoc) {
        Must.erase(Must.begin() + static_cast<ptrdiff_t>(I));
        continue;
      }
    }
    ++I;
  }
  setAge(Must, Block, 1);
}

void CacheAbsState::accessBlockFifo(BlockAddr Block, const MemoryModel &MM,
                                    bool UseShadow) {
  uint32_t Assoc = MM.config().Associativity;
  uint32_t Set = MM.setOf(Block);

  const CacheSetPartition *Old = findPart(Set);
  uint32_t VMustOld = Old ? ageIn(Old->Must, Block, Assoc) : Assoc + 1;
  // A provably resident block hits on every path, and a FIFO hit leaves
  // the whole set untouched (no rejuvenation): the transfer is exactly the
  // identity. This is also what makes repeated accesses must-hits.
  if (VMustOld <= Assoc)
    return;

  // Possible miss. With shadows, a block absent from MAY is not cached on
  // any path, so the access is a *definite* miss: it lands at insertion
  // position 1 and pushes every other line of the set one position deeper.
  // Without that proof the touched block still ends resident either way
  // (hit: it already was; miss: it is inserted), but only at the weakest
  // bound — position <= associativity.
  uint32_t VMayOld = Old ? ageIn(Old->May, Block, Assoc) : Assoc + 1;
  bool DefiniteMiss = UseShadow && VMayOld > Assoc;

  Payload &PL = mut();
  CacheSetPartition &Part = PL.Parts[ensurePart(PL.Parts, Set)];

  if (UseShadow) {
    if (DefiniteMiss) {
      // Every path misses, so every other line's insertion position (and
      // with it its MAY lower bound) advances by one.
      std::vector<AgedBlock> &May = Part.May;
      for (size_t I = 0; I != May.size();) {
        AgedBlock &U = May[I];
        if (U.Block != Block && ++U.Age > Assoc) {
          May.erase(May.begin() + static_cast<ptrdiff_t>(I));
          continue;
        }
        ++I;
      }
    }
    setAge(Part.May, Block, 1);
  }

  // MUST: the access may miss, displacing every tracked line of the set
  // one insertion position.
  std::vector<AgedBlock> &Must = Part.Must;
  for (size_t I = 0; I != Must.size();) {
    AgedBlock &U = Must[I];
    if (U.Block != Block && ++U.Age > Assoc) {
      Must.erase(Must.begin() + static_cast<ptrdiff_t>(I));
      continue;
    }
    ++I;
  }
  if (DefiniteMiss)
    setAge(Must, Block, 1);
  else if (Assoc <= UINT16_MAX)
    // Resident either way, but only at the weakest bound. Geometries
    // whose associativity does not fit the age field simply leave the
    // block untracked (sound: untracked = not provably resident).
    setAge(Must, Block, static_cast<uint16_t>(Assoc));
  normalize();
}

void CacheAbsState::accessBlockPlru(BlockAddr Block, const MemoryModel &MM,
                                    bool UseShadow) {
  // The sound tree bound (docs/DOMAINS.md): a k-way tree-PLRU evicts a
  // block only once every direction bit on its root path points toward it,
  // and one access to another line flips at most one of those log2(k)
  // bits. Ages therefore live in [1, log2(k) + 1], every access ages
  // every other tracked block of the set by one (hit or miss — hits flip
  // tree bits too, so the LRU relative-age refinement does not apply, and
  // neither does the recency-based shadow NYoung rule), and the touched
  // block is fully protected at age 1 afterwards.
  uint32_t Cap = MM.config().mustAgeCap();
  uint32_t Set = MM.setOf(Block);

  Payload &PL = mut();
  CacheSetPartition &Part = PL.Parts[ensurePart(PL.Parts, Set)];

  std::vector<AgedBlock> &Must = Part.Must;
  for (size_t I = 0; I != Must.size();) {
    AgedBlock &U = Must[I];
    if (U.Block != Block && ++U.Age > Cap) {
      Must.erase(Must.begin() + static_cast<ptrdiff_t>(I));
      continue;
    }
    ++I;
  }
  setAge(Must, Block, 1);
  // MAY: the touched block may be the youngest; other lower bounds stay
  // valid because no access is guaranteed to flip a bit toward a
  // particular block (tree ages are not monotone across paths).
  if (UseShadow)
    setAge(Part.May, Block, 1);
  normalize();
}

void CacheAbsState::accessUnknown(VarId Var, uint64_t InstanceK,
                                  const MemoryModel &MM, bool UseShadow) {
  assert(!Bottom && "transfer on bottom state");
  switch (MM.config().Policy) {
  case ReplacementPolicy::Lru:
    return accessUnknownLru(Var, InstanceK, MM, UseShadow);
  case ReplacementPolicy::Fifo:
    return accessUnknownFifo(Var, MM, UseShadow);
  case ReplacementPolicy::Plru:
    return accessUnknownPlru(Var, InstanceK, MM, UseShadow);
  }
}

void CacheAbsState::accessUnknownLru(VarId Var, uint64_t InstanceK,
                                     const MemoryModel &MM, bool UseShadow) {
  uint32_t Assoc = MM.config().Associativity;
  std::vector<uint32_t> Sets = MM.setsOf(Var); // Sorted, deduplicated.
  auto IsCandidateSet = [&](uint32_t Set) {
    return std::binary_search(Sets.begin(), Sets.end(), Set);
  };

  // Guaranteed-hit refinement (paper §2.2's ph[k]): when every line of the
  // array is provably resident, the access hits some line of age at most
  // MaxAge; only strictly younger blocks can age, and nothing is evicted.
  std::vector<BlockAddr> ArrayBlocks = MM.blocksOf(Var);
  uint32_t MaxAge = 0;
  bool AllCached = true;
  for (BlockAddr Block : ArrayBlocks) {
    uint32_t Age = mustAge(Block, Assoc);
    if (Age > Assoc) {
      AllCached = false;
      break;
    }
    MaxAge = std::max(MaxAge, Age);
  }

  if (AllCached) {
    // Pure aging with no eviction and no insertion: skip the payload clone
    // when nothing moves and the MAY side will not be touched either.
    bool AnyAging = false;
    for (const CacheSetPartition &Part : partitions()) {
      if (!IsCandidateSet(Part.Set))
        continue;
      for (const AgedBlock &U : Part.Must)
        if (U.Age < MaxAge) {
          AnyAging = true;
          break;
        }
      if (AnyAging)
        break;
    }
    if (AnyAging) {
      Payload &PL = mut();
      for (CacheSetPartition &Part : PL.Parts) {
        if (!IsCandidateSet(Part.Set))
          continue;
        for (AgedBlock &U : Part.Must)
          if (U.Age < MaxAge)
            ++U.Age; // Stays <= MaxAge <= Assoc: a hit evicts nothing.
      }
    } else if (!UseShadow) {
      return;
    }
  } else {
    // Conservative MUST aging: the unknown line may be a miss in any
    // candidate set, displacing one position everywhere.
    Payload &PL = mut();
    for (CacheSetPartition &Part : PL.Parts) {
      if (!IsCandidateSet(Part.Set))
        continue;
      std::vector<AgedBlock> &Must = Part.Must;
      for (size_t I = 0; I != Must.size();) {
        if (++Must[I].Age > Assoc) {
          Must.erase(Must.begin() + static_cast<ptrdiff_t>(I));
          continue;
        }
        ++I;
      }
    }
    // The nondeterministically picked fresh line (decis_levl[k*]).
    BlockAddr Instance = MM.symbolicBlock(Var, InstanceK);
    size_t Idx = ensurePart(PL.Parts, MM.setOf(Instance));
    setAge(PL.Parts[Idx].Must, Instance, 1);
  }

  if (UseShadow) {
    // Any line of the array may now be the youngest in its set.
    Payload &PL = mut();
    for (BlockAddr Block : ArrayBlocks) {
      size_t Idx = ensurePart(PL.Parts, MM.setOf(Block));
      setAge(PL.Parts[Idx].May, Block, 1);
    }
    if (!AllCached) {
      BlockAddr Instance = MM.symbolicBlock(Var, InstanceK);
      size_t Idx = ensurePart(PL.Parts, MM.setOf(Instance));
      setAge(PL.Parts[Idx].May, Instance, 1);
    }
  }
  normalize();
}

void CacheAbsState::accessUnknownFifo(VarId Var, const MemoryModel &MM,
                                      bool UseShadow) {
  uint32_t Assoc = MM.config().Associativity;
  std::vector<uint32_t> Sets = MM.setsOf(Var); // Sorted, deduplicated.
  auto IsCandidateSet = [&](uint32_t Set) {
    return std::binary_search(Sets.begin(), Sets.end(), Set);
  };

  // When every line of the array is provably resident the access hits
  // whichever line it touches, and a FIFO hit is the identity.
  std::vector<BlockAddr> ArrayBlocks = MM.blocksOf(Var);
  bool AllCached = true;
  for (BlockAddr Block : ArrayBlocks)
    if (mustAge(Block, Assoc) > Assoc) {
      AllCached = false;
      break;
    }
  if (AllCached)
    return;

  // Possible miss in any candidate set: every tracked line there may be
  // displaced one insertion position. The touched line ends resident, but
  // which line it is is unknown, so no MUST entry can claim it (a symbolic
  // instance at the weakest bound would be evicted by the next possible
  // miss anyway).
  Payload &PL = mut();
  for (CacheSetPartition &Part : PL.Parts) {
    if (!IsCandidateSet(Part.Set))
      continue;
    std::vector<AgedBlock> &Must = Part.Must;
    for (size_t I = 0; I != Must.size();) {
      if (++Must[I].Age > Assoc) {
        Must.erase(Must.begin() + static_cast<ptrdiff_t>(I));
        continue;
      }
      ++I;
    }
  }
  if (UseShadow) {
    // Any line of the array may now sit at insertion position 1.
    for (BlockAddr Block : ArrayBlocks) {
      size_t Idx = ensurePart(PL.Parts, MM.setOf(Block));
      setAge(PL.Parts[Idx].May, Block, 1);
    }
  }
  normalize();
}

void CacheAbsState::accessUnknownPlru(VarId Var, uint64_t InstanceK,
                                      const MemoryModel &MM, bool UseShadow) {
  uint32_t Cap = MM.config().mustAgeCap();
  std::vector<uint32_t> Sets = MM.setsOf(Var); // Sorted, deduplicated.
  auto IsCandidateSet = [&](uint32_t Set) {
    return std::binary_search(Sets.begin(), Sets.end(), Set);
  };

  // Hit or miss, the access flips tree bits in whichever candidate set it
  // lands in, so every tracked block there ages one step toward the tree
  // bound; the touched line itself ends fully protected, represented by
  // the fresh symbolic instance at age 1 (its concrete age is 1 whether
  // the access hit or filled).
  Payload &PL = mut();
  for (CacheSetPartition &Part : PL.Parts) {
    if (!IsCandidateSet(Part.Set))
      continue;
    std::vector<AgedBlock> &Must = Part.Must;
    for (size_t I = 0; I != Must.size();) {
      if (++Must[I].Age > Cap) {
        Must.erase(Must.begin() + static_cast<ptrdiff_t>(I));
        continue;
      }
      ++I;
    }
  }
  BlockAddr Instance = MM.symbolicBlock(Var, InstanceK);
  size_t Idx = ensurePart(PL.Parts, MM.setOf(Instance));
  setAge(PL.Parts[Idx].Must, Instance, 1);

  if (UseShadow) {
    std::vector<BlockAddr> ArrayBlocks = MM.blocksOf(Var);
    for (BlockAddr Block : ArrayBlocks) {
      size_t I = ensurePart(PL.Parts, MM.setOf(Block));
      setAge(PL.Parts[I].May, Block, 1);
    }
    size_t I = ensurePart(PL.Parts, MM.setOf(Instance));
    setAge(PL.Parts[I].May, Instance, 1);
  }
  normalize();
}

void CacheAbsState::applyCallEffect(const std::vector<uint32_t> &SetPressure,
                                    const std::vector<AgedBlock> &ExitMust,
                                    const std::vector<BlockAddr> &MayBlocks,
                                    const MemoryModel &MM, bool UseShadow,
                                    bool InsertExitMust, bool ApplyPressure) {
  if (Bottom)
    return;
  uint32_t Assoc = MM.config().Associativity;
  bool IsLru = MM.config().Policy == ReplacementPolicy::Lru;

  if (ApplyPressure) {
    // Probe first so the no-op case (nothing tracked in any pressured set)
    // never clones the payload.
    bool AnyWork = false;
    for (const CacheSetPartition &Part : partitions())
      if (Part.Set < SetPressure.size() && SetPressure[Part.Set] > 0 &&
          !Part.Must.empty()) {
        AnyWork = true;
        break;
      }
    if (AnyWork) {
      Payload &PL = mut();
      for (CacheSetPartition &Part : PL.Parts) {
        uint32_t K =
            Part.Set < SetPressure.size() ? SetPressure[Part.Set] : 0;
        if (K == 0 || Part.Must.empty())
          continue;
        if (!IsLru) {
          Part.Must.clear();
          continue;
        }
        std::vector<AgedBlock> &Must = Part.Must;
        for (size_t I = 0; I != Must.size();) {
          uint32_t NewAge = Must[I].Age + K;
          if (NewAge > Assoc) {
            Must.erase(Must.begin() + static_cast<ptrdiff_t>(I));
            continue;
          }
          Must[I].Age = static_cast<uint16_t>(NewAge);
          ++I;
        }
      }
    }
  }

  if (InsertExitMust && !ExitMust.empty()) {
    Payload &PL = mut();
    for (const AgedBlock &E : ExitMust) {
      size_t Idx = ensurePart(PL.Parts, MM.setOf(E.Block));
      std::vector<AgedBlock> &Must = PL.Parts[Idx].Must;
      auto It = std::lower_bound(
          Must.begin(), Must.end(), E.Block,
          [](const AgedBlock &A, BlockAddr B) { return A.Block < B; });
      // Both the surviving caller bound and the callee exit bound are valid
      // age upper bounds; keep the tighter one.
      if (It != Must.end() && It->Block == E.Block)
        It->Age = std::min(It->Age, E.Age);
      else
        Must.insert(It, E);
    }
  }

  if (UseShadow && !MayBlocks.empty()) {
    Payload &PL = mut();
    for (BlockAddr Block : MayBlocks) {
      size_t Idx = ensurePart(PL.Parts, MM.setOf(Block));
      setAge(PL.Parts[Idx].May, Block, 1);
    }
  }
  normalize();
}

namespace {

/// Would `Into ⊔= From` change Into? A pure read-only merge walk: MUST is
/// intersection/max (change = a dropped entry or a grown age), MAY is
/// union/min (change = a new entry or a shrunk age).
bool joinWouldChange(const std::vector<CacheSetPartition> &Into,
                     const std::vector<CacheSetPartition> &From,
                     bool UseShadow) {
  size_t I = 0, J = 0;
  while (I != Into.size() || J != From.size()) {
    if (J == From.size() ||
        (I != Into.size() && Into[I].Set < From[J].Set)) {
      if (!Into[I].Must.empty())
        return true; // Whole partition leaves the MUST intersection.
      ++I;
      continue;
    }
    if (I == Into.size() || Into[I].Set > From[J].Set) {
      if (UseShadow && !From[J].May.empty())
        return true; // New MAY partition enters the union.
      ++J;
      continue;
    }
    const CacheSetPartition &A = Into[I], &B = From[J];
    {
      size_t X = 0, Y = 0;
      while (X != A.Must.size()) {
        if (Y == B.Must.size() || A.Must[X].Block < B.Must[Y].Block)
          return true; // Dropped from the intersection.
        if (A.Must[X].Block > B.Must[Y].Block) {
          ++Y;
          continue;
        }
        if (B.Must[Y].Age > A.Must[X].Age)
          return true; // Age grows to the max.
        ++X;
        ++Y;
      }
    }
    if (UseShadow) {
      size_t X = 0, Y = 0;
      while (Y != B.May.size()) {
        if (X == A.May.size() || A.May[X].Block > B.May[Y].Block)
          return true; // New shadow entry.
        if (A.May[X].Block < B.May[Y].Block) {
          ++X;
          continue;
        }
        if (B.May[Y].Age < A.May[X].Age)
          return true; // Age shrinks to the min.
        ++X;
        ++Y;
      }
    }
    ++I;
    ++J;
  }
  return false;
}

/// MUST intersection with max ages.
std::vector<AgedBlock> mergeMust(const std::vector<AgedBlock> &A,
                                 const std::vector<AgedBlock> &B) {
  std::vector<AgedBlock> Out;
  Out.reserve(std::min(A.size(), B.size()));
  size_t I = 0, J = 0;
  while (I != A.size() && J != B.size()) {
    if (A[I].Block < B[J].Block)
      ++I;
    else if (A[I].Block > B[J].Block)
      ++J;
    else {
      Out.push_back(AgedBlock{A[I].Block, std::max(A[I].Age, B[J].Age)});
      ++I;
      ++J;
    }
  }
  return Out;
}

/// MAY union with min ages.
std::vector<AgedBlock> mergeMay(const std::vector<AgedBlock> &A,
                                const std::vector<AgedBlock> &B) {
  std::vector<AgedBlock> Out;
  Out.reserve(A.size() + B.size());
  size_t I = 0, J = 0;
  while (I != A.size() || J != B.size()) {
    if (J == B.size() || (I != A.size() && A[I].Block < B[J].Block))
      Out.push_back(A[I++]);
    else if (I == A.size() || A[I].Block > B[J].Block)
      Out.push_back(B[J++]);
    else {
      Out.push_back(AgedBlock{A[I].Block, std::min(A[I].Age, B[J].Age)});
      ++I;
      ++J;
    }
  }
  return Out;
}

} // namespace

bool CacheAbsState::joinInto(const CacheAbsState &From, bool UseShadow) {
  if (From.Bottom)
    return false;
  if (Bottom) {
    Bottom = false;
    P = From.P; // Copy-on-write: a refcount bump, not an entry copy.
    if (!UseShadow && P) {
      bool AnyMay = false;
      for (const CacheSetPartition &Part : P->Parts)
        if (!Part.May.empty()) {
          AnyMay = true;
          break;
        }
      if (AnyMay) {
        Payload &PL = mut();
        for (CacheSetPartition &Part : PL.Parts)
          Part.May.clear();
        normalize();
      }
    }
    return true;
  }
  if (P == From.P)
    return false; // Shared storage: identical states, join is a no-op.
  // Hash-equality early exit: equal structures join to themselves.
  if (P && From.P && P->HashKnown && From.P->HashKnown &&
      P->Hash == From.P->Hash && P->Parts == From.P->Parts)
    return false;

  const std::vector<CacheSetPartition> &Into = partitions();
  const std::vector<CacheSetPartition> &Src = From.partitions();
  if (!joinWouldChange(Into, Src, UseShadow))
    return false;

  // Build the merged payload fresh; the no-change path above keeps this
  // allocation off the fixed-point steady state.
  auto NewP = std::make_shared<Payload>();
  std::vector<CacheSetPartition> &Out = NewP->Parts;
  Out.reserve(std::max(Into.size(), Src.size()));
  size_t I = 0, J = 0;
  while (I != Into.size() || J != Src.size()) {
    CacheSetPartition Part;
    if (J == Src.size() || (I != Into.size() && Into[I].Set < Src[J].Set)) {
      // Our set only: MUST intersection is empty, MAY keeps our entries
      // (untouched when shadows are off, matching the flat representation).
      Part.Set = Into[I].Set;
      Part.May = Into[I].May;
      ++I;
    } else if (I == Into.size() || Into[I].Set > Src[J].Set) {
      // Their set only: nothing joins MUST; MAY union adopts theirs.
      Part.Set = Src[J].Set;
      if (UseShadow)
        Part.May = Src[J].May;
      ++J;
    } else {
      Part.Set = Into[I].Set;
      Part.Must = mergeMust(Into[I].Must, Src[J].Must);
      Part.May = UseShadow ? mergeMay(Into[I].May, Src[J].May) : Into[I].May;
      ++I;
      ++J;
    }
    if (!Part.Must.empty() || !Part.May.empty())
      Out.push_back(std::move(Part));
  }
  if (Out.empty())
    P.reset();
  else
    P = std::move(NewP);
  return true;
}

bool CacheAbsState::leq(const CacheAbsState &RHS, uint32_t Assoc) const {
  if (Bottom)
    return true;
  if (RHS.Bottom)
    return false;
  // MUST ages are upper bounds and join takes max, so larger ages sit
  // higher in the lattice: S ⊑ S' iff ∀b mustAge_S(b) <= mustAge_S'(b).
  // Blocks RHS does not track have age Assoc+1 there, which dominates
  // everything, so only RHS's tracked blocks need checking.
  for (const CacheSetPartition &RPart : RHS.partitions()) {
    const CacheSetPartition *LPart = findPart(RPart.Set);
    for (const AgedBlock &E : RPart.Must) {
      uint32_t Mine = LPart ? ageIn(LPart->Must, E.Block, Assoc) : Assoc + 1;
      if (Mine > E.Age)
        return false;
    }
  }
  // MAY ages are lower bounds with min-join: S ⊑ S' iff
  // ∀b mayAge_S(b) >= mayAge_S'(b); untracked blocks on our side are
  // Assoc+1 and dominate.
  for (const CacheSetPartition &LPart : partitions()) {
    const CacheSetPartition *RPart = RHS.findPart(LPart.Set);
    for (const AgedBlock &E : LPart.May) {
      uint32_t Theirs = RPart ? ageIn(RPart->May, E.Block, Assoc) : Assoc + 1;
      if (E.Age < Theirs)
        return false;
    }
  }
  return true;
}

void CacheAbsState::widenFrom(const CacheAbsState &Prev, uint32_t Assoc) {
  if (Bottom || Prev.Bottom)
    return;
  // Evict MUST entries whose age grew since the previous iterate. Probe
  // first so the stable case never clones the payload.
  auto Grew = [&](const CacheSetPartition &Part, const AgedBlock &E) {
    const CacheSetPartition *PPart = Prev.findPart(Part.Set);
    uint32_t PrevAge = PPart ? ageIn(PPart->Must, E.Block, Assoc) : Assoc + 1;
    return PrevAge <= Assoc && E.Age > PrevAge;
  };
  bool AnyGrew = false;
  for (const CacheSetPartition &Part : partitions()) {
    for (const AgedBlock &E : Part.Must)
      if (Grew(Part, E)) {
        AnyGrew = true;
        break;
      }
    if (AnyGrew)
      break;
  }
  if (!AnyGrew)
    return;
  Payload &PL = mut();
  for (CacheSetPartition &Part : PL.Parts)
    Part.Must.erase(std::remove_if(Part.Must.begin(), Part.Must.end(),
                                   [&](const AgedBlock &E) {
                                     return Grew(Part, E);
                                   }),
                    Part.Must.end());
  normalize();
  // MAY ages descend toward 1 on a finite ladder; no acceleration needed.
}

bool CacheAbsState::operator==(const CacheAbsState &RHS) const {
  if (Bottom != RHS.Bottom)
    return false;
  if (Bottom)
    return true;
  if (P == RHS.P)
    return true; // Shared storage (or both empty).
  // Canonical form: a live payload always has at least one partition, so
  // an empty state never equals a non-empty one here.
  if (P && RHS.P && P->HashKnown && RHS.P->HashKnown && P->Hash != RHS.P->Hash)
    return false;
  return partitions() == RHS.partitions();
}

std::vector<AgedBlock> CacheAbsState::mustEntries() const {
  std::vector<AgedBlock> Out;
  for (const CacheSetPartition &Part : partitions())
    Out.insert(Out.end(), Part.Must.begin(), Part.Must.end());
  std::sort(Out.begin(), Out.end(),
            [](const AgedBlock &A, const AgedBlock &B) {
              return A.Block < B.Block;
            });
  return Out;
}

std::vector<AgedBlock> CacheAbsState::mayEntries() const {
  std::vector<AgedBlock> Out;
  for (const CacheSetPartition &Part : partitions())
    Out.insert(Out.end(), Part.May.begin(), Part.May.end());
  std::sort(Out.begin(), Out.end(),
            [](const AgedBlock &A, const AgedBlock &B) {
              return A.Block < B.Block;
            });
  return Out;
}

uint64_t CacheAbsState::structuralHash() const {
  if (Bottom)
    return 0xB0770B0770ULL;
  if (!P)
    return 0x9E3779B97F4A7C15ULL; // The empty (entry) state.
  if (P->HashKnown)
    return P->Hash;
  uint64_t H = 0xcbf29ce484222325ULL;
  auto Mix = [&H](uint64_t V) {
    H = (H ^ splitmix64(V)) * 0x100000001b3ULL;
  };
  Mix(P->Parts.size());
  for (const CacheSetPartition &Part : P->Parts) {
    Mix(Part.Set);
    Mix(Part.Must.size());
    for (const AgedBlock &E : Part.Must) {
      Mix(E.Block);
      Mix(E.Age);
    }
    Mix(Part.May.size());
    for (const AgedBlock &E : Part.May) {
      Mix(E.Block);
      Mix(E.Age);
    }
  }
  P->Hash = H;
  P->HashKnown = true;
  return H;
}

std::string CacheAbsState::str(const MemoryModel &MM) const {
  if (Bottom)
    return "⊥";
  // Group by age, youngest first, like the paper's tables.
  std::map<uint32_t, std::vector<std::string>> ByAge;
  for (const CacheSetPartition &Part : partitions()) {
    for (const AgedBlock &E : Part.Must)
      ByAge[E.Age].push_back(MM.blockName(E.Block));
    for (const AgedBlock &E : Part.May)
      ByAge[E.Age].push_back("∃" + MM.blockName(E.Block));
  }
  std::string Out = "{";
  bool FirstGroup = true;
  for (auto &[Age, Names] : ByAge) {
    std::sort(Names.begin(), Names.end());
    for (const std::string &Name : Names) {
      if (!FirstGroup)
        Out += ", ";
      FirstGroup = false;
      Out += Name + "@" + std::to_string(Age);
    }
  }
  Out += "}";
  return Out;
}
