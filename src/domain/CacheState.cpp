//===- CacheState.cpp -----------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "domain/CacheState.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <map>

using namespace specai;

namespace {

/// Binary search for a block in a sorted AgedBlock vector; returns the
/// iterator (end if absent is signaled by block mismatch).
std::vector<AgedBlock>::const_iterator find(const std::vector<AgedBlock> &Vec,
                                            BlockAddr Block) {
  auto It = std::lower_bound(
      Vec.begin(), Vec.end(), Block,
      [](const AgedBlock &E, BlockAddr B) { return E.Block < B; });
  if (It != Vec.end() && It->Block == Block)
    return It;
  return Vec.end();
}

/// Inserts or overwrites (Block -> Age), keeping the vector sorted.
void setAge(std::vector<AgedBlock> &Vec, BlockAddr Block, uint16_t Age) {
  auto It = std::lower_bound(
      Vec.begin(), Vec.end(), Block,
      [](const AgedBlock &E, BlockAddr B) { return E.Block < B; });
  if (It != Vec.end() && It->Block == Block) {
    It->Age = Age;
    return;
  }
  Vec.insert(It, AgedBlock{Block, Age});
}

} // namespace

uint32_t CacheAbsState::mustAge(BlockAddr Block, uint32_t Assoc) const {
  auto It = find(Must, Block);
  return It == Must.end() ? Assoc + 1 : It->Age;
}

uint32_t CacheAbsState::mayAge(BlockAddr Block, uint32_t Assoc) const {
  auto It = find(May, Block);
  return It == May.end() ? Assoc + 1 : It->Age;
}

bool CacheAbsState::isMustCached(BlockAddr Block) const {
  return find(Must, Block) != Must.end();
}

void CacheAbsState::accessBlock(BlockAddr Block, const MemoryModel &MM,
                                bool UseShadow) {
  assert(!Bottom && "transfer on bottom state");
  uint32_t Assoc = MM.config().Associativity;
  uint32_t Set = MM.setOf(Block);
  uint32_t VMustOld = mustAge(Block, Assoc);
  uint32_t VMayOld = mayAge(Block, Assoc);

  if (UseShadow) {
    // MAY (shadow) update first, Appendix B: ∃u with Age(∃u) <= Age(∃v)
    // ages by one; older shadows keep their age.
    for (size_t I = 0; I != May.size();) {
      AgedBlock &U = May[I];
      if (U.Block != Block && MM.setOf(U.Block) == Set && U.Age <= VMayOld) {
        if (++U.Age > Assoc) {
          May.erase(May.begin() + static_cast<ptrdiff_t>(I));
          continue; // Do not advance; erased current element.
        }
      }
      ++I;
    }
    setAge(May, Block, 1);
  }

  // MUST update. With shadows, the refined rule (Appendix B): u ages only
  // when at least Age(u) shadow blocks (other than u) are at least as young
  // as u — otherwise younger lines cannot fill u's set far enough to push
  // it out one position.
  for (size_t I = 0; I != Must.size();) {
    AgedBlock &U = Must[I];
    bool SameSet = U.Block != Block && MM.setOf(U.Block) == Set;
    if (SameSet && U.Age < VMustOld) {
      bool ShouldAge = true;
      if (UseShadow) {
        uint32_t NYoung = 0;
        for (const AgedBlock &W : May) {
          if (W.Block == U.Block || MM.setOf(W.Block) != Set)
            continue;
          if (W.Age <= U.Age)
            ++NYoung;
        }
        ShouldAge = NYoung >= U.Age;
      }
      if (ShouldAge && ++U.Age > Assoc) {
        Must.erase(Must.begin() + static_cast<ptrdiff_t>(I));
        continue;
      }
    }
    ++I;
  }
  setAge(Must, Block, 1);
}

void CacheAbsState::accessUnknown(VarId Var, uint64_t InstanceK,
                                  const MemoryModel &MM, bool UseShadow) {
  assert(!Bottom && "transfer on bottom state");
  uint32_t Assoc = MM.config().Associativity;
  std::vector<uint32_t> Sets = MM.setsOf(Var);
  auto InCandidateSet = [&](BlockAddr Block) {
    uint32_t Set = MM.setOf(Block);
    return std::binary_search(Sets.begin(), Sets.end(), Set);
  };

  // Guaranteed-hit refinement (paper §2.2's ph[k]): when every line of the
  // array is provably resident, the access hits some line of age at most
  // MaxAge; only strictly younger blocks can age, and nothing is evicted.
  std::vector<BlockAddr> ArrayBlocks = MM.blocksOf(Var);
  uint32_t MaxAge = 0;
  bool AllCached = true;
  for (BlockAddr Block : ArrayBlocks) {
    uint32_t Age = mustAge(Block, Assoc);
    if (Age > Assoc) {
      AllCached = false;
      break;
    }
    MaxAge = std::max(MaxAge, Age);
  }

  if (AllCached) {
    for (AgedBlock &U : Must)
      if (InCandidateSet(U.Block) && U.Age < MaxAge)
        ++U.Age; // Stays <= MaxAge <= Assoc: a hit evicts nothing.
  } else {
    // Conservative MUST aging: the unknown line may be a miss in any
    // candidate set, displacing one position everywhere.
    for (size_t I = 0; I != Must.size();) {
      AgedBlock &U = Must[I];
      if (InCandidateSet(U.Block)) {
        if (++U.Age > Assoc) {
          Must.erase(Must.begin() + static_cast<ptrdiff_t>(I));
          continue;
        }
      }
      ++I;
    }
    // The nondeterministically picked fresh line (decis_levl[k*]).
    BlockAddr Instance = MM.symbolicBlock(Var, InstanceK);
    setAge(Must, Instance, 1);
  }

  if (UseShadow) {
    // Any line of the array may now be the youngest in its set.
    for (BlockAddr Block : ArrayBlocks)
      setAge(May, Block, 1);
    if (!AllCached)
      setAge(May, MM.symbolicBlock(Var, InstanceK), 1);
  }
}

bool CacheAbsState::joinInto(const CacheAbsState &From, bool UseShadow) {
  if (From.Bottom)
    return false;
  if (Bottom) {
    *this = From;
    if (!UseShadow)
      May.clear();
    return true;
  }

  bool Changed = false;

  // MUST: key intersection, max age.
  {
    std::vector<AgedBlock> Out;
    Out.reserve(std::min(Must.size(), From.Must.size()));
    size_t I = 0, J = 0;
    while (I != Must.size() && J != From.Must.size()) {
      if (Must[I].Block < From.Must[J].Block) {
        ++I;
        Changed = true; // Entry dropped.
      } else if (Must[I].Block > From.Must[J].Block) {
        ++J;
      } else {
        uint16_t Age = std::max(Must[I].Age, From.Must[J].Age);
        if (Age != Must[I].Age)
          Changed = true;
        Out.push_back(AgedBlock{Must[I].Block, Age});
        ++I;
        ++J;
      }
    }
    if (I != Must.size())
      Changed = true; // Tail dropped.
    Must = std::move(Out);
  }

  // MAY: key union, min age.
  if (UseShadow) {
    std::vector<AgedBlock> Out;
    Out.reserve(May.size() + From.May.size());
    size_t I = 0, J = 0;
    while (I != May.size() || J != From.May.size()) {
      if (J == From.May.size() ||
          (I != May.size() && May[I].Block < From.May[J].Block)) {
        Out.push_back(May[I]);
        ++I;
      } else if (I == May.size() || May[I].Block > From.May[J].Block) {
        Out.push_back(From.May[J]);
        Changed = true; // New shadow entry.
        ++J;
      } else {
        uint16_t Age = std::min(May[I].Age, From.May[J].Age);
        if (Age != May[I].Age)
          Changed = true;
        Out.push_back(AgedBlock{May[I].Block, Age});
        ++I;
        ++J;
      }
    }
    May = std::move(Out);
  }

  return Changed;
}

bool CacheAbsState::leq(const CacheAbsState &RHS, uint32_t Assoc) const {
  if (Bottom)
    return true;
  if (RHS.Bottom)
    return false;
  // MUST ages are upper bounds and join takes max, so larger ages sit
  // higher in the lattice: S ⊑ S' iff ∀b mustAge_S(b) <= mustAge_S'(b).
  // Blocks RHS does not track have age Assoc+1 there, which dominates
  // everything, so only RHS's tracked blocks need checking.
  for (const AgedBlock &E : RHS.Must)
    if (mustAge(E.Block, Assoc) > E.Age)
      return false;
  // MAY ages are lower bounds with min-join: S ⊑ S' iff
  // ∀b mayAge_S(b) >= mayAge_S'(b); untracked blocks on our side are
  // Assoc+1 and dominate.
  for (const AgedBlock &E : May)
    if (E.Age < RHS.mayAge(E.Block, Assoc))
      return false;
  return true;
}

void CacheAbsState::widenFrom(const CacheAbsState &Prev, uint32_t Assoc) {
  if (Bottom || Prev.Bottom)
    return;
  // Evict MUST entries whose age grew since the previous iterate.
  std::vector<AgedBlock> Out;
  Out.reserve(Must.size());
  for (const AgedBlock &E : Must) {
    uint32_t PrevAge = Prev.mustAge(E.Block, Assoc);
    if (PrevAge <= Assoc && E.Age > PrevAge)
      continue; // Growing: widen to evicted.
    Out.push_back(E);
  }
  Must = std::move(Out);
  // MAY ages descend toward 1 on a finite ladder; no acceleration needed.
}

std::string CacheAbsState::str(const MemoryModel &MM) const {
  if (Bottom)
    return "⊥";
  uint32_t Assoc = MM.config().Associativity;
  // Group by age, youngest first, like the paper's tables.
  std::map<uint32_t, std::vector<std::string>> ByAge;
  for (const AgedBlock &E : Must)
    ByAge[E.Age].push_back(MM.blockName(E.Block));
  for (const AgedBlock &E : May)
    ByAge[E.Age].push_back("∃" + MM.blockName(E.Block));
  (void)Assoc;
  std::string Out = "{";
  bool FirstGroup = true;
  for (auto &[Age, Names] : ByAge) {
    std::sort(Names.begin(), Names.end());
    for (const std::string &Name : Names) {
      if (!FirstGroup)
        Out += ", ";
      FirstGroup = false;
      Out += Name + "@" + std::to_string(Age);
    }
  }
  Out += "}";
  return Out;
}
