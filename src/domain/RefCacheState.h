//===- RefCacheState.h - Reference AgedBlock-vector cache states -*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The retained *reference* implementation of the abstract cache state:
/// the exact AgedBlock-vector representation CacheAbsState used before the
/// packed per-set SWAR rewrite (docs/PERFORMANCE.md, "Packed age lanes").
/// Semantics are documented in CacheState.h; this file preserves them
/// entry-for-entry so the representation-differential property harness
/// (tests/packed_state_test.cpp) can assert, operation by operation, that
/// the packed transfers/joins/widenings/containments compute identical
/// abstract states.
///
/// This class is *not* a hot path and must stay boring: every transfer is
/// the original scalar loop, every join the original merge walk. When the
/// packed and reference states disagree, the reference is the spec.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_DOMAIN_REFCACHESTATE_H
#define SPECAI_DOMAIN_REFCACHESTATE_H

#include "domain/CacheState.h"
#include "memory/MemoryModel.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace specai {

/// The MUST/MAY entries of one cache set, each sorted by block — the
/// pre-packing representation.
struct RefSetPartition {
  uint32_t Set = 0;
  std::vector<AgedBlock> Must;
  std::vector<AgedBlock> May;

  bool operator==(const RefSetPartition &RHS) const = default;
};

/// Reference abstract cache state; see the file comment. API mirrors
/// CacheAbsState so the differential harness can drive both through one
/// templated script.
class RefCacheState {
public:
  static RefCacheState bottom() {
    RefCacheState S;
    S.Bottom = true;
    return S;
  }
  static RefCacheState empty() { return RefCacheState(); }

  bool isBottom() const { return Bottom; }

  uint32_t mustAge(BlockAddr Block, uint32_t Assoc) const;
  uint32_t mayAge(BlockAddr Block, uint32_t Assoc) const;
  bool isMustCached(BlockAddr Block) const;

  void accessBlock(BlockAddr Block, const MemoryModel &MM, bool UseShadow);
  void accessUnknown(VarId Var, uint64_t InstanceK, const MemoryModel &MM,
                     bool UseShadow);
  void applyCallEffect(const std::vector<uint32_t> &SetPressure,
                       const std::vector<AgedBlock> &ExitMust,
                       const std::vector<BlockAddr> &MayBlocks,
                       const MemoryModel &MM, bool UseShadow,
                       bool InsertExitMust, bool ApplyPressure);

  bool joinInto(const RefCacheState &From, bool UseShadow);
  bool leq(const RefCacheState &RHS, uint32_t Assoc) const;
  void widenFrom(const RefCacheState &Prev, uint32_t Assoc);

  bool operator==(const RefCacheState &RHS) const;

  const std::vector<RefSetPartition> &partitions() const {
    return P ? P->Parts : emptyParts();
  }

  std::vector<AgedBlock> mustEntries() const;
  std::vector<AgedBlock> mayEntries() const;

  std::string str(const MemoryModel &MM) const;

private:
  struct Payload {
    std::vector<RefSetPartition> Parts;
  };

  static const std::vector<RefSetPartition> &emptyParts();

  Payload &mut();
  void normalize();
  const RefSetPartition *findPart(uint32_t Set) const;

  void accessBlockLru(BlockAddr Block, const MemoryModel &MM, bool UseShadow);
  void accessBlockFifo(BlockAddr Block, const MemoryModel &MM, bool UseShadow);
  void accessBlockPlru(BlockAddr Block, const MemoryModel &MM, bool UseShadow);
  void accessUnknownLru(VarId Var, uint64_t InstanceK, const MemoryModel &MM,
                        bool UseShadow);
  void accessUnknownFifo(VarId Var, const MemoryModel &MM, bool UseShadow);
  void accessUnknownPlru(VarId Var, uint64_t InstanceK, const MemoryModel &MM,
                         bool UseShadow);

  bool Bottom = false;
  std::shared_ptr<Payload> P;
};

} // namespace specai

#endif // SPECAI_DOMAIN_REFCACHESTATE_H
