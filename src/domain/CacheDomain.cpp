//===- CacheDomain.cpp ----------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "domain/CacheDomain.h"

using namespace specai;

/// Wraps a constant element index the same way the concrete machine does
/// (modulo the element count, total semantics).
static uint64_t wrapElement(int64_t Index, uint64_t NumElements) {
  if (NumElements == 0)
    return 0;
  int64_t M = Index % static_cast<int64_t>(NumElements);
  if (M < 0)
    M += static_cast<int64_t>(NumElements);
  return static_cast<uint64_t>(M);
}

void CacheDomain::applyCall(State &S, const Instruction &I, bool Speculative) {
  if (!Options.Summaries || I.Callee >= Options.Summaries->size())
    return; // No summary table: Call is identity (never the case in
            // Summarize-mode analyses; see isTransferIdentity).
  const CallSummary &Sum = (*Options.Summaries)[I.Callee];
  S.applyCallEffect(Sum.SetPressure, Sum.ExitMust, Sum.MayBlocks, *MM,
                    Options.UseShadow,
                    /*InsertExitMust=*/!Speculative,
                    /*ApplyPressure=*/!Options.StaleSummaryFault);
}

void CacheDomain::transfer(State &S, NodeId N) {
  if (S.isBottom())
    return;
  const Instruction &I = G->inst(N);
  if (I.Op == Opcode::Call) {
    applyCall(S, I, /*Speculative=*/false);
    return;
  }
  if (!I.accessesMemory())
    return;

  const MemVar &Var = MM->program().Vars[I.Var];
  if (Var.NumElements == 1 || I.Index.isImm()) {
    uint64_t Elem =
        I.Index.isImm() ? wrapElement(I.Index.Imm, Var.NumElements) : 0;
    S.accessBlock(MM->blockOf(I.Var, Elem), *MM, Options.UseShadow);
    return;
  }

  // Statically unknown index: conservative transfer with the next symbolic
  // instance (saturates at the array's line count inside the model).
  uint64_t K = InstanceCounters[I.Var]++;
  S.accessUnknown(I.Var, K, *MM, Options.UseShadow);
}

bool CacheDomain::isMustHit(const State &S, NodeId N) const {
  if (S.isBottom())
    return true; // Unreachable accesses hit vacuously.
  const Instruction &I = G->inst(N);
  if (!I.accessesMemory())
    return false;
  const MemVar &Var = MM->program().Vars[I.Var];
  if (Var.NumElements == 1 || I.Index.isImm()) {
    uint64_t Elem =
        I.Index.isImm() ? wrapElement(I.Index.Imm, Var.NumElements) : 0;
    return S.isMustCached(MM->blockOf(I.Var, Elem));
  }
  // Unknown index: a hit is guaranteed only if every line of the array is
  // resident (paper §2.2: ph[k] is leak-free because all of ph is cached).
  for (BlockAddr Block : MM->blocksOf(I.Var))
    if (!S.isMustCached(Block))
      return false;
  return true;
}

CacheDomain::AccessClass CacheDomain::classifyAccess(const State &S,
                                                     NodeId N) const {
  if (isMustHit(S, N))
    return AccessClass::MustHit;
  if (!Options.UseShadow || S.isBottom())
    return AccessClass::Mixed; // Cannot certify a guaranteed miss.

  uint32_t Assoc = MM->config().Associativity;
  const Instruction &I = G->inst(N);
  const MemVar &Var = MM->program().Vars[I.Var];

  auto DefinitelyOut = [&](BlockAddr Block) {
    // Absent from MAY: not cached on any path; the access misses for sure.
    return S.mayAge(Block, Assoc) > Assoc;
  };

  if (Var.NumElements == 1 || I.Index.isImm()) {
    uint64_t Elem =
        I.Index.isImm() ? wrapElement(I.Index.Imm, Var.NumElements) : 0;
    return DefinitelyOut(MM->blockOf(I.Var, Elem)) ? AccessClass::MustMiss
                                                   : AccessClass::Mixed;
  }
  for (BlockAddr Block : MM->blocksOf(I.Var))
    if (!DefinitelyOut(Block))
      return AccessClass::Mixed;
  return AccessClass::MustMiss;
}
