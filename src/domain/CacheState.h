//===- CacheState.h - Abstract LRU cache states -----------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract cache state of the paper's static MUST-HIT analysis (§4,
/// Appendix A) with the optional shadow-variable refinement (Appendix B):
///
///  - MUST entries: per block, an upper bound on its LRU age within its
///    cache set; a block is tracked only while that bound is <= the set
///    associativity (i.e. provably resident). Join is element-wise max over
///    the key intersection; the entry state (empty cache, everything out)
///    is the analysis top.
///  - MAY (shadow) entries: per block, a lower bound on the youngest age it
///    can have along *some* path (the paper's ∃v). Join is element-wise min
///    over the key union. The MAY ages refine the MUST aging rule: u only
///    ages if NYoung(u) >= Age(u), where NYoung counts shadow entries at
///    least as young as u (Appendix B.1.1) — this is what keeps `a` cached
///    in the paper's Figure 11/13 loop.
///
/// Set-associative caches are handled per set: an access only ages blocks
/// mapped to the same set, and ages range over [1, associativity].
///
/// The aging rule is parameterized by the cache's replacement policy
/// (CacheConfig::Policy; lattice derivations in docs/DOMAINS.md):
///
///  - LRU (the paper's domain, everything above): an access rejuvenates
///    the touched block to age 1 and ages younger blocks, optionally
///    refined through the shadow NYoung rule.
///  - FIFO: insertion-age bounds. A provably resident block's access is a
///    definite hit and changes nothing (hits never rejuvenate a FIFO
///    line); a possible miss ages every tracked block of the set, and the
///    touched block is resident afterwards at bound `associativity` — or
///    bound 1 when the shadow state proves the access a definite miss.
///  - Tree-PLRU: the sound pessimistic tree bound. Ages range over
///    [1, log2(associativity) + 1]; every access ages every other tracked
///    block of the set by one (one tree bit can flip toward a block per
///    access) and rejuvenates the touched block to 1. The shadow NYoung
///    refinement is recency-based and does not apply.
///
/// Accesses with statically unknown element indices are conservative: every
/// tracked block in any set the array can touch ages by one (the unknown
/// line may evict any of them), a fresh symbolic instance block (the
/// paper's `decis_lev[k*]`) is inserted, and on the MAY side every line of
/// the array may now be youngest.
///
/// Representation (the fixed-point hot path; see docs/PERFORMANCE.md):
///
///  - Entries are *partitioned by cache set*: each CacheSetPartition holds
///    the MUST/MAY entries of one set, sorted by block, so a transfer only
///    walks the accessed set's partition and age lookups are a partition
///    probe plus a binary search. Partitions are kept sorted by set id and
///    never empty (canonical form), so structural equality is memberwise.
///  - The partition vector lives behind a *copy-on-write payload*
///    (shared_ptr + unshare-on-mutate): copying a state is a refcount
///    bump, and the engines' ubiquitous `Out = In; transfer(Out)` pattern
///    only clones when the transfer actually mutates. Two handles may
///    share storage (`sharesStorageWith`), which joinInto exploits as an
///    O(1) no-change fast path.
///  - Each payload caches a lazily computed 64-bit structural hash
///    (`structuralHash`), giving equality a fast negative path and backing
///    the engines' transfer memoization and the StateInterner pool.
///
/// Handles are cheap to copy across threads, but payloads must not be
/// mutated or lazily hashed concurrently; each analysis run owns its
/// states (the batch/fuzz drivers parallelize over independent runs).
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_DOMAIN_CACHESTATE_H
#define SPECAI_DOMAIN_CACHESTATE_H

#include "memory/MemoryModel.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace specai {

/// One tracked (block, age) pair; kept sorted by block within a partition.
struct AgedBlock {
  BlockAddr Block;
  uint16_t Age;

  bool operator==(const AgedBlock &RHS) const = default;
};

/// The MUST/MAY entries of one cache set, each sorted by block.
struct CacheSetPartition {
  uint32_t Set = 0;
  std::vector<AgedBlock> Must;
  std::vector<AgedBlock> May;

  bool operator==(const CacheSetPartition &RHS) const = default;
};

/// Abstract cache state: MUST ages plus optional MAY (shadow) ages.
class CacheAbsState {
public:
  /// The unreachable state (join identity).
  static CacheAbsState bottom() {
    CacheAbsState S;
    S.Bottom = true;
    return S;
  }
  /// The empty-cache state: every block out of cache. This is the entry
  /// state and the analysis top.
  static CacheAbsState empty() { return CacheAbsState(); }

  bool isBottom() const { return Bottom; }

  /// MUST age upper bound of \p Block; \p Assoc + 1 when not provably
  /// resident.
  uint32_t mustAge(BlockAddr Block, uint32_t Assoc) const;
  /// MAY age lower bound of \p Block; \p Assoc + 1 when the block is not in
  /// cache on any path.
  uint32_t mayAge(BlockAddr Block, uint32_t Assoc) const;

  /// True iff \p Block is provably resident (MUST age <= associativity).
  bool isMustCached(BlockAddr Block) const;

  /// Applies the transfer function for an access to a statically known
  /// block (paper §4.2 / Appendix B.1.1 when \p UseShadow), under the
  /// replacement policy of \p MM's cache config.
  void accessBlock(BlockAddr Block, const MemoryModel &MM, bool UseShadow);

  /// Applies the conservative transfer for an access to array \p Var with
  /// an unknown element index; \p InstanceK selects the symbolic instance
  /// block (the caller's running counter, saturated internally). Policy
  /// comes from \p MM's cache config.
  void accessUnknown(VarId Var, uint64_t InstanceK, const MemoryModel &MM,
                     bool UseShadow);

  /// Summarize mode: applies one callee invocation's cache effect (the
  /// Call-node transfer; DESIGN.md §4).
  ///
  ///  - Pressure (when \p ApplyPressure): \p SetPressure[s] counts the
  ///    distinct lines the callee may touch in set s. Under LRU every MUST
  ///    entry of a pressured set ages by that count (K distinct lines age
  ///    an untouched line by at most K — the LRU stack property); under
  ///    FIFO/PLRU every MUST entry of a pressured set is dropped, because
  ///    insertion/tree ages advance once per *access* and callee loops make
  ///    the access count unbounded.
  ///  - \p ExitMust (when \p InsertExitMust): blocks provably resident at
  ///    every callee exit, analyzed from the unknown entry state (the MUST
  ///    top, whose concretization covers every call context), so their exit
  ///    ages are valid upper bounds here; an existing entry keeps the
  ///    smaller of the two bounds. Skipped inside speculative windows where
  ///    the callee may have executed only partially.
  ///  - \p MayBlocks (when \p UseShadow): every line the callee may touch
  ///    becomes possibly-youngest (MAY bound 1), keeping the shadow NYoung
  ///    refinement sound across the call.
  void applyCallEffect(const std::vector<uint32_t> &SetPressure,
                       const std::vector<AgedBlock> &ExitMust,
                       const std::vector<BlockAddr> &MayBlocks,
                       const MemoryModel &MM, bool UseShadow,
                       bool InsertExitMust, bool ApplyPressure);

  /// this = this ⊔ \p From. Returns true iff this changed. Shared-storage
  /// and hash-equal states short-circuit to "no change" without touching
  /// any entry.
  bool joinInto(const CacheAbsState &From, bool UseShadow);

  /// Partial-order check: true iff this ⊑ RHS (RHS is at least as
  /// conservative). Bottom ⊑ everything.
  bool leq(const CacheAbsState &RHS, uint32_t Assoc) const;

  /// Widening: this = \p Prev ∇ this. Any MUST entry whose age grew since
  /// \p Prev is evicted, jumping chains to the top of the per-block ladder
  /// (paper §6.3).
  void widenFrom(const CacheAbsState &Prev, uint32_t Assoc);

  /// Structural equality (bottom flag + partition contents). Shared
  /// payloads and mismatched cached hashes short-circuit.
  bool operator==(const CacheAbsState &RHS) const;

  /// Per-set partitions in canonical form (sorted by set id, no empty
  /// partitions). The zero-copy view for hot iteration.
  const std::vector<CacheSetPartition> &partitions() const {
    return P ? P->Parts : emptyParts();
  }

  /// All MUST entries merged across partitions, sorted by block — the
  /// canonical order the pre-partitioning representation stored, which the
  /// golden digests in tests/fuzz_regression_test.cpp pin. Materializes a
  /// fresh vector; hot paths should iterate partitions() instead.
  std::vector<AgedBlock> mustEntries() const;
  /// All MAY entries merged across partitions, sorted by block.
  std::vector<AgedBlock> mayEntries() const;

  /// 64-bit hash of the canonical structure, cached in the payload until
  /// the next mutation. Equal states always hash equal.
  uint64_t structuralHash() const;

  /// True iff both handles alias the same payload (copy-on-write aliasing;
  /// implies structural equality). Bottom and entry states own no payload
  /// and never report sharing.
  bool sharesStorageWith(const CacheAbsState &RHS) const {
    return P && P == RHS.P;
  }

  /// Renders like the paper's tables: blocks grouped youngest-first, e.g.
  /// "{mil, wd, el}". MAY entries render with the ∃ prefix when present.
  std::string str(const MemoryModel &MM) const;

private:
  struct Payload {
    std::vector<CacheSetPartition> Parts;
    /// Lazily computed by structuralHash(); invalidated on mutation.
    mutable uint64_t Hash = 0;
    mutable bool HashKnown = false;
  };

  static const std::vector<CacheSetPartition> &emptyParts();

  /// Unshares the payload (clone if aliased, allocate if absent) and
  /// invalidates the cached hash. Every mutator goes through here.
  Payload &mut();
  /// Drops empty partitions; releases the payload when nothing is left so
  /// the empty state has a unique representation.
  void normalize();

  /// Partition of \p Set, or nullptr.
  const CacheSetPartition *findPart(uint32_t Set) const;

  // Per-policy transfer bodies behind the accessBlock/accessUnknown
  // dispatchers (docs/DOMAINS.md). The Lru bodies are the paper's rules,
  // bit-identical to the pre-policy implementation.
  void accessBlockLru(BlockAddr Block, const MemoryModel &MM, bool UseShadow);
  void accessBlockFifo(BlockAddr Block, const MemoryModel &MM, bool UseShadow);
  void accessBlockPlru(BlockAddr Block, const MemoryModel &MM, bool UseShadow);
  void accessUnknownLru(VarId Var, uint64_t InstanceK, const MemoryModel &MM,
                        bool UseShadow);
  void accessUnknownFifo(VarId Var, const MemoryModel &MM, bool UseShadow);
  void accessUnknownPlru(VarId Var, uint64_t InstanceK, const MemoryModel &MM,
                         bool UseShadow);

  bool Bottom = false;
  /// Null means "no tracked entries" (the empty/entry state).
  std::shared_ptr<Payload> P;
};

} // namespace specai

#endif // SPECAI_DOMAIN_CACHESTATE_H
