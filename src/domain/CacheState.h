//===- CacheState.h - Abstract LRU cache states -----------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract cache state of the paper's static MUST-HIT analysis (§4,
/// Appendix A) with the optional shadow-variable refinement (Appendix B):
///
///  - MUST entries: per block, an upper bound on its LRU age within its
///    cache set; a block is tracked only while that bound is <= the set
///    associativity (i.e. provably resident). Join is element-wise max over
///    the key intersection; the entry state (empty cache, everything out)
///    is the analysis top.
///  - MAY (shadow) entries: per block, a lower bound on the youngest age it
///    can have along *some* path (the paper's ∃v). Join is element-wise min
///    over the key union. The MAY ages refine the MUST aging rule: u only
///    ages if NYoung(u) >= Age(u), where NYoung counts shadow entries at
///    least as young as u (Appendix B.1.1) — this is what keeps `a` cached
///    in the paper's Figure 11/13 loop.
///
/// Set-associative caches are handled per set: an access only ages blocks
/// mapped to the same set, and ages range over [1, associativity].
///
/// The aging rule is parameterized by the cache's replacement policy
/// (CacheConfig::Policy; lattice derivations in docs/DOMAINS.md):
///
///  - LRU (the paper's domain, everything above): an access rejuvenates
///    the touched block to age 1 and ages younger blocks, optionally
///    refined through the shadow NYoung rule.
///  - FIFO: insertion-age bounds. A provably resident block's access is a
///    definite hit and changes nothing (hits never rejuvenate a FIFO
///    line); a possible miss ages every tracked block of the set, and the
///    touched block is resident afterwards at bound `associativity` — or
///    bound 1 when the shadow state proves the access a definite miss.
///  - Tree-PLRU: the sound pessimistic tree bound. Ages range over
///    [1, log2(associativity) + 1]; every access ages every other tracked
///    block of the set by one (one tree bit can flip toward a block per
///    access) and rejuvenates the touched block to 1. The shadow NYoung
///    refinement is recency-based and does not apply.
///
/// Accesses with statically unknown element indices are conservative: every
/// tracked block in any set the array can touch ages by one (the unknown
/// line may evict any of them), a fresh symbolic instance block (the
/// paper's `decis_lev[k*]`) is inserted, and on the MAY side every line of
/// the array may now be youngest.
///
/// Representation (the fixed-point hot path; see docs/PERFORMANCE.md,
/// "Packed age lanes"):
///
///  - Entries are *partitioned by cache set*: each CacheSetPartition holds
///    the MUST/MAY entries of one set, sorted by block. Partitions are
///    kept sorted by set id and never empty (canonical form), so
///    structural equality is memberwise.
///  - Within a partition, ages are *bit-packed*: PackedAges stores the
///    sorted block list alongside a u64 word array holding one fixed-width
///    age lane per entry (nibble / byte / 16-bit, chosen from the policy's
///    `mustAgeCap()`). Aging a set is a masked SWAR add over whole words,
///    joins are per-lane max/min, and containment is a subtract-and-test —
///    16/8/4 entries per instruction instead of one. The Appendix B NYoung
///    rule runs off a MAY-age histogram (O(n + cap) per transfer, not
///    O(n^2)). Zero lanes mark absent tail slots (real ages are >= 1).
///  - The partition vector lives behind a *copy-on-write payload* with an
///    intrusive atomic refcount: copying a state is a refcount bump, and
///    the engines' ubiquitous `Out = In; transfer(Out)` pattern only
///    clones when the transfer actually mutates. Two handles may share
///    storage (`sharesStorageWith`), which joinInto exploits as an O(1)
///    no-change fast path.
///  - Payloads are recycled through a per-analysis arena
///    (CacheAbsState::ArenaScope over support/RecyclingArena.h): retiring
///    a payload hands its partition buffers to the next clone instead of
///    the allocator, so a converging fixpoint stops allocating. States may
///    outlive the arena — every payload is individually heap-deletable.
///  - Each payload caches a lazily computed 64-bit structural hash
///    (`structuralHash`), giving equality a fast negative path and backing
///    the engines' transfer memoization and the StateInterner pool.
///
/// Handles are cheap to copy across threads; refcounts and the lazy hash
/// are atomic, so concurrent *reads* (including lazy hashing) of a shared
/// payload are safe. Mutation still requires exclusive ownership of the
/// handle, which copy-on-write guarantees.
///
/// `mustEntries()/mayEntries()` materialize the canonical block-sorted
/// entry order of the pre-packing representations, so every golden digest
/// pinned by the fuzz corpus is bit-identical across representations; the
/// retained reference implementation (RefCacheState.h) and the
/// representation-differential harness (tests/packed_state_test.cpp) keep
/// the two in lock-step.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_DOMAIN_CACHESTATE_H
#define SPECAI_DOMAIN_CACHESTATE_H

#include "memory/MemoryModel.h"
#include "support/RecyclingArena.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

namespace specai {

/// One tracked (block, age) pair — the element type PackedAges decodes to;
/// canonical entry lists (mustEntries) and call summaries store these.
struct AgedBlock {
  BlockAddr Block;
  uint16_t Age;

  bool operator==(const AgedBlock &RHS) const = default;
};

/// A sorted block list with bit-packed age lanes: entry i's age lives in a
/// fixed-width lane (4/8/16 bits) of the u64 word array. Lane width is
/// chosen once per analysis from the policy's age cap
/// (CacheAbsState::packedLaneBits) and is 0 canonically when empty. Tail
/// lanes past size() are zero — real ages are >= 1 — so bulk SWAR ops can
/// run over whole words unmasked.
///
/// Reads decode on the fly (operator[], iteration yields AgedBlock by
/// value); bulk mutators (aging, pressure, merges) work a word at a time.
class PackedAges {
public:
  static constexpr size_t npos = static_cast<size_t>(-1);

  PackedAges() = default;

  size_t size() const { return Blks.size(); }
  bool empty() const { return Blks.empty(); }
  /// Lane width in bits (4, 8 or 16); 0 canonically when empty.
  unsigned laneBits() const { return LaneLog ? 1u << LaneLog : 0; }

  BlockAddr blockAt(size_t I) const { return Blks[I]; }
  uint16_t ageAt(size_t I) const {
    return static_cast<uint16_t>((Words[wordOf(I)] >> shiftOf(I)) &
                                 laneMask());
  }
  AgedBlock operator[](size_t I) const { return {Blks[I], ageAt(I)}; }

  /// The sorted block list (parallel to the age lanes).
  const std::vector<BlockAddr> &blocks() const { return Blks; }
  /// The raw lane words (tail lanes zero); for the word-at-a-time merge
  /// fast paths and the differential harness's layout checks.
  const std::vector<uint64_t> &words() const { return Words; }

  /// Index of \p Block, or npos.
  size_t find(BlockAddr Block) const;
  /// Age of \p Block, or \p Fallback when absent.
  uint32_t ageOf(BlockAddr Block, uint32_t Fallback) const {
    size_t I = find(Block);
    return I == npos ? Fallback : ageAt(I);
  }

  /// Proxy iteration yielding AgedBlock by value, so range-for over a
  /// partition reads exactly like the pre-packing representation.
  class const_iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = AgedBlock;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = AgedBlock;

    const_iterator() = default;
    const_iterator(const PackedAges *PA, size_t I) : PA(PA), I(I) {}
    AgedBlock operator*() const { return (*PA)[I]; }
    const_iterator &operator++() {
      ++I;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator T = *this;
      ++I;
      return T;
    }
    bool operator==(const const_iterator &RHS) const { return I == RHS.I; }

  private:
    const PackedAges *PA = nullptr;
    size_t I = 0;
  };
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, Blks.size()}; }

  // -- Mutators (all maintain sorted-by-block, zero-tail, canonical-empty
  // -- invariants). LaneBits parameters install the width on the first
  // -- entry and must match afterwards.

  /// Inserts or overwrites (Block -> Age).
  void set(BlockAddr Block, uint16_t Age, unsigned LaneBits);
  /// Overwrites the age lane of entry \p I.
  void setAgeAt(size_t I, uint16_t Age) {
    uint64_t &W = Words[wordOf(I)];
    unsigned Sh = shiftOf(I);
    W = (W & ~(laneMask() << Sh)) | (static_cast<uint64_t>(Age) << Sh);
  }
  /// Appends (Block, Age); Block must sort after every present block.
  void append(BlockAddr Block, uint16_t Age, unsigned LaneBits);
  void eraseAt(size_t I);
  /// Removes every entry; buffer capacity is retained.
  void clear();

  // -- Bulk SWAR transfer kernels (CacheState.cpp).

  /// Ages by one every entry with Age <= \p MaxOldAge, except index \p
  /// Skip (npos for none); entries aged past \p Cap are removed. The
  /// masked-saturating-add at the heart of every access transfer.
  void agePredLE(uint32_t MaxOldAge, size_t Skip, uint32_t Cap);
  /// True iff any entry has Age < \p V.
  bool anyAgeLT(uint32_t V) const;
  /// The LRU call-pressure transfer: Age += K, entries past \p Cap
  /// removed.
  void addPressure(uint32_t K, uint32_t Cap);
  /// Removes every entry with Age > \p Cap (eviction compaction).
  void compactAgesAbove(uint32_t Cap);
  /// Removes every entry whose flag in \p Remove is nonzero.
  void removeFlagged(const std::vector<char> &Remove);

  // -- Merge/compare kernels; `sameBlocks` peers run a word at a time.

  bool sameBlocks(const PackedAges &RHS) const { return Blks == RHS.Blks; }
  /// this = MUST join of A and B: key intersection, lane max.
  void assignMustMerge(const PackedAges &A, const PackedAges &B);
  /// this = MAY join of A and B: key union, lane min.
  void assignMayMerge(const PackedAges &A, const PackedAges &B);
  /// this ⊔must= From, mutating in place (uniquely-owned join
  /// destinations). Peers with identical block lists merge word-at-a-time
  /// with no allocation; otherwise \p Scratch (caller-reused storage)
  /// takes the rebuilt result and is swapped in.
  void mustMergeInPlace(const PackedAges &From, PackedAges &Scratch);
  /// this ⊔may= From, mutating in place; see mustMergeInPlace.
  void mayMergeInPlace(const PackedAges &From, PackedAges &Scratch);
  /// Would a MUST join of this and From change this?
  bool mustJoinWouldChange(const PackedAges &From) const;
  /// Would a MAY join of this and From change this?
  bool mayJoinWouldChange(const PackedAges &From) const;
  /// Precondition sameBlocks(RHS): true iff every lane here >= RHS's.
  bool allLanesGE(const PackedAges &RHS) const;

  bool operator==(const PackedAges &RHS) const = default;

private:
  unsigned lanesPerWordLog() const { return 6u - LaneLog; }
  size_t wordOf(size_t I) const { return I >> lanesPerWordLog(); }
  unsigned shiftOf(size_t I) const {
    return static_cast<unsigned>((I & ((size_t(1) << lanesPerWordLog()) - 1))
                                 << LaneLog);
  }
  uint64_t laneMask() const { return (uint64_t(1) << (1u << LaneLog)) - 1; }
  size_t wordsFor(size_t N) const {
    unsigned Lpw = lanesPerWordLog();
    return (N + (size_t(1) << Lpw) - 1) >> Lpw;
  }
  void installLaneBits(unsigned LaneBits);
  /// Resizes Words to match Blks.size() and zeroes tail lanes; resets the
  /// lane width when empty (canonical form).
  void retruncate();

  /// Sorted blocks; ages at matching lane indices.
  std::vector<BlockAddr> Blks;
  std::vector<uint64_t> Words;
  /// log2(lane bits): 2/3/4 for nibble/byte/u16 lanes; 0 when empty.
  uint8_t LaneLog = 0;
};

/// The MUST/MAY entries of one cache set, each sorted by block.
struct CacheSetPartition {
  uint32_t Set = 0;
  PackedAges Must;
  PackedAges May;

  bool operator==(const CacheSetPartition &RHS) const = default;
};

/// Abstract cache state: MUST ages plus optional MAY (shadow) ages.
class CacheAbsState {
  /// Copy-on-write payload. RefCount and the lazy hash are atomic so
  /// shared payloads tolerate concurrent readers (docs/PERFORMANCE.md,
  /// "Intra-analysis parallelism").
  struct Payload {
    std::atomic<uint32_t> RefCount{1};
    std::vector<CacheSetPartition> Parts;
    /// Lazily computed by structuralHash(); invalidated on mutation.
    mutable std::atomic<uint64_t> Hash{0};
    mutable std::atomic<bool> HashKnown{false};
  };

public:
  /// RAII per-analysis payload arena: while a scope is active on a thread,
  /// payloads released there are recycled into the next allocation with
  /// their partition buffers intact (zero-malloc steady state). States may
  /// outlive the scope — payloads fall back to plain heap delete.
  class ArenaScope {
  private:
    RecyclingArena<Payload>::Scope S;
  };

  CacheAbsState() = default;
  CacheAbsState(const CacheAbsState &RHS) : Bottom(RHS.Bottom), P(RHS.P) {
    if (P)
      P->RefCount.fetch_add(1, std::memory_order_relaxed);
  }
  CacheAbsState(CacheAbsState &&RHS) noexcept
      : Bottom(RHS.Bottom), P(RHS.P) {
    RHS.P = nullptr;
    RHS.Bottom = false;
  }
  CacheAbsState &operator=(const CacheAbsState &RHS) {
    if (RHS.P)
      RHS.P->RefCount.fetch_add(1, std::memory_order_relaxed);
    Payload *Old = P;
    P = RHS.P;
    Bottom = RHS.Bottom;
    if (Old)
      release(Old);
    return *this;
  }
  CacheAbsState &operator=(CacheAbsState &&RHS) noexcept {
    std::swap(P, RHS.P);
    std::swap(Bottom, RHS.Bottom);
    return *this;
  }
  ~CacheAbsState() {
    if (P)
      release(P);
  }

  /// The unreachable state (join identity).
  static CacheAbsState bottom() {
    CacheAbsState S;
    S.Bottom = true;
    return S;
  }
  /// The empty-cache state: every block out of cache. This is the entry
  /// state and the analysis top.
  static CacheAbsState empty() { return CacheAbsState(); }

  bool isBottom() const { return Bottom; }

  /// Age-lane width (bits) the packed representation uses for ages bounded
  /// by \p AgeCap: nibbles up to cap 14, bytes up to 254, u16 above (cap
  /// <= 65534). MUST lanes size from `mustAgeCap()`, MAY lanes from the
  /// associativity; assoc = 16 under LRU/FIFO is the first nibble-to-byte
  /// cutover (cap 16 > 14).
  static unsigned packedLaneBits(uint32_t AgeCap) {
    assert(AgeCap <= 65534 && "age cap exceeds packed lane range");
    return AgeCap <= 14 ? 4u : AgeCap <= 254 ? 8u : 16u;
  }

  /// MUST age upper bound of \p Block; \p Assoc + 1 when not provably
  /// resident.
  uint32_t mustAge(BlockAddr Block, uint32_t Assoc) const;
  /// MAY age lower bound of \p Block; \p Assoc + 1 when the block is not in
  /// cache on any path.
  uint32_t mayAge(BlockAddr Block, uint32_t Assoc) const;

  /// True iff \p Block is provably resident (MUST age <= associativity).
  bool isMustCached(BlockAddr Block) const;

  /// Applies the transfer function for an access to a statically known
  /// block (paper §4.2 / Appendix B.1.1 when \p UseShadow), under the
  /// replacement policy of \p MM's cache config.
  void accessBlock(BlockAddr Block, const MemoryModel &MM, bool UseShadow);

  /// Applies the conservative transfer for an access to array \p Var with
  /// an unknown element index; \p InstanceK selects the symbolic instance
  /// block (the caller's running counter, saturated internally). Policy
  /// comes from \p MM's cache config.
  void accessUnknown(VarId Var, uint64_t InstanceK, const MemoryModel &MM,
                     bool UseShadow);

  /// Summarize mode: applies one callee invocation's cache effect (the
  /// Call-node transfer; DESIGN.md §4).
  ///
  ///  - Pressure (when \p ApplyPressure): \p SetPressure[s] counts the
  ///    distinct lines the callee may touch in set s. Under LRU every MUST
  ///    entry of a pressured set ages by that count (K distinct lines age
  ///    an untouched line by at most K — the LRU stack property); under
  ///    FIFO/PLRU every MUST entry of a pressured set is dropped, because
  ///    insertion/tree ages advance once per *access* and callee loops make
  ///    the access count unbounded.
  ///  - \p ExitMust (when \p InsertExitMust): blocks provably resident at
  ///    every callee exit, analyzed from the unknown entry state (the MUST
  ///    top, whose concretization covers every call context), so their exit
  ///    ages are valid upper bounds here; an existing entry keeps the
  ///    smaller of the two bounds. Skipped inside speculative windows where
  ///    the callee may have executed only partially.
  ///  - \p MayBlocks (when \p UseShadow): every line the callee may touch
  ///    becomes possibly-youngest (MAY bound 1), keeping the shadow NYoung
  ///    refinement sound across the call.
  void applyCallEffect(const std::vector<uint32_t> &SetPressure,
                       const std::vector<AgedBlock> &ExitMust,
                       const std::vector<BlockAddr> &MayBlocks,
                       const MemoryModel &MM, bool UseShadow,
                       bool InsertExitMust, bool ApplyPressure);

  /// this = this ⊔ \p From. Returns true iff this changed. Shared-storage
  /// and hash-equal states short-circuit to "no change" without touching
  /// any entry. When an IntraPool is active on this thread
  /// (support/Parallel.h) and the merge spans enough partitions, the
  /// per-set merges fan out across the pool — set partitions are
  /// independent, so the result is bit-identical at any job count.
  bool joinInto(const CacheAbsState &From, bool UseShadow);

  /// Partial-order check: true iff this ⊑ RHS (RHS is at least as
  /// conservative). Bottom ⊑ everything.
  bool leq(const CacheAbsState &RHS, uint32_t Assoc) const;

  /// Widening: this = \p Prev ∇ this. Any MUST entry whose age grew since
  /// \p Prev is evicted, jumping chains to the top of the per-block ladder
  /// (paper §6.3).
  void widenFrom(const CacheAbsState &Prev, uint32_t Assoc);

  /// Structural equality (bottom flag + partition contents). Shared
  /// payloads and mismatched cached hashes short-circuit.
  bool operator==(const CacheAbsState &RHS) const;

  /// Per-set partitions in canonical form (sorted by set id, no empty
  /// partitions). The zero-copy view for hot iteration.
  const std::vector<CacheSetPartition> &partitions() const {
    return P ? P->Parts : emptyParts();
  }

  /// All MUST entries merged across partitions, sorted by block — the
  /// canonical order the pre-partitioning representation stored, which the
  /// golden digests in tests/fuzz_regression_test.cpp pin. Materializes a
  /// fresh vector; hot paths should iterate partitions() instead.
  std::vector<AgedBlock> mustEntries() const;
  /// All MAY entries merged across partitions, sorted by block.
  std::vector<AgedBlock> mayEntries() const;

  /// 64-bit hash of the canonical structure, cached in the payload until
  /// the next mutation. Equal states always hash equal, whatever their
  /// lane widths.
  uint64_t structuralHash() const;

  /// True iff both handles alias the same payload (copy-on-write aliasing;
  /// implies structural equality). Bottom and entry states own no payload
  /// and never report sharing.
  bool sharesStorageWith(const CacheAbsState &RHS) const {
    return P && P == RHS.P;
  }

  /// Renders like the paper's tables: blocks grouped youngest-first, e.g.
  /// "{mil, wd, el}". MAY entries render with the ∃ prefix when present.
  std::string str(const MemoryModel &MM) const;

private:
  static const std::vector<CacheSetPartition> &emptyParts();

  static void release(Payload *PL) {
    if (PL->RefCount.fetch_sub(1, std::memory_order_acq_rel) == 1)
      RecyclingArena<Payload>::releaseToActive(PL);
  }
  /// A fresh unique payload (possibly recycled; Parts contents
  /// unspecified until the caller overwrites them).
  static Payload *allocPayload();

  /// Unshares the payload (clone if aliased, allocate-empty if absent) and
  /// invalidates the cached hash. Every mutator goes through here.
  Payload &mut();
  /// Drops empty partitions; releases the payload when nothing is left so
  /// the empty state has a unique representation.
  void normalize();

  /// Partition of \p Set, or nullptr.
  const CacheSetPartition *findPart(uint32_t Set) const;

  // Per-policy transfer bodies behind the accessBlock/accessUnknown
  // dispatchers (docs/DOMAINS.md). The Lru bodies are the paper's rules,
  // bit-identical to the pre-policy implementation.
  void accessBlockLru(BlockAddr Block, const MemoryModel &MM, bool UseShadow);
  void accessBlockFifo(BlockAddr Block, const MemoryModel &MM, bool UseShadow);
  void accessBlockPlru(BlockAddr Block, const MemoryModel &MM, bool UseShadow);
  void accessUnknownLru(VarId Var, uint64_t InstanceK, const MemoryModel &MM,
                        bool UseShadow);
  void accessUnknownFifo(VarId Var, const MemoryModel &MM, bool UseShadow);
  void accessUnknownPlru(VarId Var, uint64_t InstanceK, const MemoryModel &MM,
                         bool UseShadow);

  bool Bottom = false;
  /// Null means "no tracked entries" (the empty/entry state).
  Payload *P = nullptr;
};

/// Namespace-scope alias for the per-analysis payload arena
/// (AnalysisPipeline.cpp and the worker threads of support/Parallel.h
/// activate one).
using CacheStateArenaScope = CacheAbsState::ArenaScope;

} // namespace specai

#endif // SPECAI_DOMAIN_CACHESTATE_H
