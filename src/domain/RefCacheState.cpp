//===- RefCacheState.cpp --------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
//
// The pre-packing scalar implementation, preserved verbatim as the spec of
// the packed representation (see RefCacheState.h). Deliberately unoptimized.
//
//===----------------------------------------------------------------------===//

#include "domain/RefCacheState.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <map>

using namespace specai;

namespace {

/// Binary search for a block in a sorted AgedBlock vector; returns the
/// iterator (end if absent is signaled by block mismatch).
std::vector<AgedBlock>::const_iterator find(const std::vector<AgedBlock> &Vec,
                                            BlockAddr Block) {
  auto It = std::lower_bound(
      Vec.begin(), Vec.end(), Block,
      [](const AgedBlock &E, BlockAddr B) { return E.Block < B; });
  if (It != Vec.end() && It->Block == Block)
    return It;
  return Vec.end();
}

/// Inserts or overwrites (Block -> Age), keeping the vector sorted.
void setAge(std::vector<AgedBlock> &Vec, BlockAddr Block, uint16_t Age) {
  auto It = std::lower_bound(
      Vec.begin(), Vec.end(), Block,
      [](const AgedBlock &E, BlockAddr B) { return E.Block < B; });
  if (It != Vec.end() && It->Block == Block) {
    It->Age = Age;
    return;
  }
  Vec.insert(It, AgedBlock{Block, Age});
}

/// Age of \p Block in a sorted entry vector; \p Assoc + 1 when absent.
uint32_t ageIn(const std::vector<AgedBlock> &Vec, BlockAddr Block,
               uint32_t Assoc) {
  auto It = find(Vec, Block);
  return It == Vec.end() ? Assoc + 1 : It->Age;
}

/// Partition lookup in a set-sorted partition vector.
std::vector<RefSetPartition>::const_iterator
findPartIn(const std::vector<RefSetPartition> &Parts, uint32_t Set) {
  auto It = std::lower_bound(
      Parts.begin(), Parts.end(), Set,
      [](const RefSetPartition &P, uint32_t S) { return P.Set < S; });
  if (It != Parts.end() && It->Set == Set)
    return It;
  return Parts.end();
}

/// Find-or-insert the partition of \p Set, keeping the vector set-sorted.
/// Returns an index (not a reference: the insert may reallocate).
size_t ensurePart(std::vector<RefSetPartition> &Parts, uint32_t Set) {
  auto It = std::lower_bound(
      Parts.begin(), Parts.end(), Set,
      [](const RefSetPartition &P, uint32_t S) { return P.Set < S; });
  if (It == Parts.end() || It->Set != Set)
    It = Parts.insert(It, RefSetPartition{Set, {}, {}});
  return static_cast<size_t>(It - Parts.begin());
}

} // namespace

const std::vector<RefSetPartition> &RefCacheState::emptyParts() {
  static const std::vector<RefSetPartition> Empty;
  return Empty;
}

RefCacheState::Payload &RefCacheState::mut() {
  if (!P)
    P = std::make_shared<Payload>();
  else if (P.use_count() > 1)
    P = std::make_shared<Payload>(*P);
  return *P;
}

void RefCacheState::normalize() {
  if (!P)
    return;
  std::vector<RefSetPartition> &Parts = P->Parts;
  Parts.erase(std::remove_if(Parts.begin(), Parts.end(),
                             [](const RefSetPartition &Part) {
                               return Part.Must.empty() && Part.May.empty();
                             }),
              Parts.end());
  if (Parts.empty())
    P.reset();
}

const RefSetPartition *RefCacheState::findPart(uint32_t Set) const {
  if (!P)
    return nullptr;
  auto It = findPartIn(P->Parts, Set);
  return It == P->Parts.end() ? nullptr : &*It;
}

uint32_t RefCacheState::mustAge(BlockAddr Block, uint32_t Assoc) const {
  for (const RefSetPartition &Part : partitions()) {
    auto It = find(Part.Must, Block);
    if (It != Part.Must.end())
      return It->Age;
  }
  return Assoc + 1;
}

uint32_t RefCacheState::mayAge(BlockAddr Block, uint32_t Assoc) const {
  for (const RefSetPartition &Part : partitions()) {
    auto It = find(Part.May, Block);
    if (It != Part.May.end())
      return It->Age;
  }
  return Assoc + 1;
}

bool RefCacheState::isMustCached(BlockAddr Block) const {
  for (const RefSetPartition &Part : partitions())
    if (find(Part.Must, Block) != Part.Must.end())
      return true;
  return false;
}

void RefCacheState::accessBlock(BlockAddr Block, const MemoryModel &MM,
                                bool UseShadow) {
  assert(!Bottom && "transfer on bottom state");
  switch (MM.config().Policy) {
  case ReplacementPolicy::Lru:
    return accessBlockLru(Block, MM, UseShadow);
  case ReplacementPolicy::Fifo:
    return accessBlockFifo(Block, MM, UseShadow);
  case ReplacementPolicy::Plru:
    return accessBlockPlru(Block, MM, UseShadow);
  }
}

void RefCacheState::accessBlockLru(BlockAddr Block, const MemoryModel &MM,
                                   bool UseShadow) {
  uint32_t Assoc = MM.config().Associativity;
  uint32_t Set = MM.setOf(Block);

  const RefSetPartition *Old = findPart(Set);
  uint32_t VMustOld = Old ? ageIn(Old->Must, Block, Assoc) : Assoc + 1;
  uint32_t VMayOld = Old ? ageIn(Old->May, Block, Assoc) : Assoc + 1;

  Payload &PL = mut();
  RefSetPartition &Part = PL.Parts[ensurePart(PL.Parts, Set)];

  if (UseShadow) {
    // MAY (shadow) update first, Appendix B: ∃u with Age(∃u) <= Age(∃v)
    // ages by one; older shadows keep their age.
    std::vector<AgedBlock> &May = Part.May;
    for (size_t I = 0; I != May.size();) {
      AgedBlock &U = May[I];
      if (U.Block != Block && U.Age <= VMayOld) {
        if (++U.Age > Assoc) {
          May.erase(May.begin() + static_cast<ptrdiff_t>(I));
          continue; // Do not advance; erased current element.
        }
      }
      ++I;
    }
    setAge(May, Block, 1);
  }

  // MUST update. With shadows, the refined rule (Appendix B): u ages only
  // when at least Age(u) shadow blocks (other than u) are at least as young
  // as u.
  std::vector<AgedBlock> &Must = Part.Must;
  for (size_t I = 0; I != Must.size();) {
    AgedBlock &U = Must[I];
    if (U.Block != Block && U.Age < VMustOld) {
      bool ShouldAge = true;
      if (UseShadow) {
        uint32_t NYoung = 0;
        for (const AgedBlock &W : Part.May) {
          if (W.Block == U.Block)
            continue;
          if (W.Age <= U.Age)
            ++NYoung;
        }
        ShouldAge = NYoung >= U.Age;
      }
      if (ShouldAge && ++U.Age > Assoc) {
        Must.erase(Must.begin() + static_cast<ptrdiff_t>(I));
        continue;
      }
    }
    ++I;
  }
  setAge(Must, Block, 1);
}

void RefCacheState::accessBlockFifo(BlockAddr Block, const MemoryModel &MM,
                                    bool UseShadow) {
  uint32_t Assoc = MM.config().Associativity;
  uint32_t Set = MM.setOf(Block);

  const RefSetPartition *Old = findPart(Set);
  uint32_t VMustOld = Old ? ageIn(Old->Must, Block, Assoc) : Assoc + 1;
  // A provably resident block hits on every path, and a FIFO hit leaves
  // the whole set untouched: the transfer is exactly the identity.
  if (VMustOld <= Assoc)
    return;

  uint32_t VMayOld = Old ? ageIn(Old->May, Block, Assoc) : Assoc + 1;
  bool DefiniteMiss = UseShadow && VMayOld > Assoc;

  Payload &PL = mut();
  RefSetPartition &Part = PL.Parts[ensurePart(PL.Parts, Set)];

  if (UseShadow) {
    if (DefiniteMiss) {
      std::vector<AgedBlock> &May = Part.May;
      for (size_t I = 0; I != May.size();) {
        AgedBlock &U = May[I];
        if (U.Block != Block && ++U.Age > Assoc) {
          May.erase(May.begin() + static_cast<ptrdiff_t>(I));
          continue;
        }
        ++I;
      }
    }
    setAge(Part.May, Block, 1);
  }

  std::vector<AgedBlock> &Must = Part.Must;
  for (size_t I = 0; I != Must.size();) {
    AgedBlock &U = Must[I];
    if (U.Block != Block && ++U.Age > Assoc) {
      Must.erase(Must.begin() + static_cast<ptrdiff_t>(I));
      continue;
    }
    ++I;
  }
  if (DefiniteMiss)
    setAge(Must, Block, 1);
  else if (Assoc <= UINT16_MAX)
    setAge(Must, Block, static_cast<uint16_t>(Assoc));
  normalize();
}

void RefCacheState::accessBlockPlru(BlockAddr Block, const MemoryModel &MM,
                                    bool UseShadow) {
  uint32_t Cap = MM.config().mustAgeCap();
  uint32_t Set = MM.setOf(Block);

  Payload &PL = mut();
  RefSetPartition &Part = PL.Parts[ensurePart(PL.Parts, Set)];

  std::vector<AgedBlock> &Must = Part.Must;
  for (size_t I = 0; I != Must.size();) {
    AgedBlock &U = Must[I];
    if (U.Block != Block && ++U.Age > Cap) {
      Must.erase(Must.begin() + static_cast<ptrdiff_t>(I));
      continue;
    }
    ++I;
  }
  setAge(Must, Block, 1);
  if (UseShadow)
    setAge(Part.May, Block, 1);
  normalize();
}

void RefCacheState::accessUnknown(VarId Var, uint64_t InstanceK,
                                  const MemoryModel &MM, bool UseShadow) {
  assert(!Bottom && "transfer on bottom state");
  switch (MM.config().Policy) {
  case ReplacementPolicy::Lru:
    return accessUnknownLru(Var, InstanceK, MM, UseShadow);
  case ReplacementPolicy::Fifo:
    return accessUnknownFifo(Var, MM, UseShadow);
  case ReplacementPolicy::Plru:
    return accessUnknownPlru(Var, InstanceK, MM, UseShadow);
  }
}

void RefCacheState::accessUnknownLru(VarId Var, uint64_t InstanceK,
                                     const MemoryModel &MM, bool UseShadow) {
  uint32_t Assoc = MM.config().Associativity;
  std::vector<uint32_t> Sets = MM.setsOf(Var); // Sorted, deduplicated.
  auto IsCandidateSet = [&](uint32_t Set) {
    return std::binary_search(Sets.begin(), Sets.end(), Set);
  };

  std::vector<BlockAddr> ArrayBlocks = MM.blocksOf(Var);
  uint32_t MaxAge = 0;
  bool AllCached = true;
  for (BlockAddr Block : ArrayBlocks) {
    uint32_t Age = mustAge(Block, Assoc);
    if (Age > Assoc) {
      AllCached = false;
      break;
    }
    MaxAge = std::max(MaxAge, Age);
  }

  if (AllCached) {
    bool AnyAging = false;
    for (const RefSetPartition &Part : partitions()) {
      if (!IsCandidateSet(Part.Set))
        continue;
      for (const AgedBlock &U : Part.Must)
        if (U.Age < MaxAge) {
          AnyAging = true;
          break;
        }
      if (AnyAging)
        break;
    }
    if (AnyAging) {
      Payload &PL = mut();
      for (RefSetPartition &Part : PL.Parts) {
        if (!IsCandidateSet(Part.Set))
          continue;
        for (AgedBlock &U : Part.Must)
          if (U.Age < MaxAge)
            ++U.Age; // Stays <= MaxAge <= Assoc: a hit evicts nothing.
      }
    } else if (!UseShadow) {
      return;
    }
  } else {
    Payload &PL = mut();
    for (RefSetPartition &Part : PL.Parts) {
      if (!IsCandidateSet(Part.Set))
        continue;
      std::vector<AgedBlock> &Must = Part.Must;
      for (size_t I = 0; I != Must.size();) {
        if (++Must[I].Age > Assoc) {
          Must.erase(Must.begin() + static_cast<ptrdiff_t>(I));
          continue;
        }
        ++I;
      }
    }
    BlockAddr Instance = MM.symbolicBlock(Var, InstanceK);
    size_t Idx = ensurePart(PL.Parts, MM.setOf(Instance));
    setAge(PL.Parts[Idx].Must, Instance, 1);
  }

  if (UseShadow) {
    Payload &PL = mut();
    for (BlockAddr Block : ArrayBlocks) {
      size_t Idx = ensurePart(PL.Parts, MM.setOf(Block));
      setAge(PL.Parts[Idx].May, Block, 1);
    }
    if (!AllCached) {
      BlockAddr Instance = MM.symbolicBlock(Var, InstanceK);
      size_t Idx = ensurePart(PL.Parts, MM.setOf(Instance));
      setAge(PL.Parts[Idx].May, Instance, 1);
    }
  }
  normalize();
}

void RefCacheState::accessUnknownFifo(VarId Var, const MemoryModel &MM,
                                      bool UseShadow) {
  uint32_t Assoc = MM.config().Associativity;
  std::vector<uint32_t> Sets = MM.setsOf(Var); // Sorted, deduplicated.
  auto IsCandidateSet = [&](uint32_t Set) {
    return std::binary_search(Sets.begin(), Sets.end(), Set);
  };

  std::vector<BlockAddr> ArrayBlocks = MM.blocksOf(Var);
  bool AllCached = true;
  for (BlockAddr Block : ArrayBlocks)
    if (mustAge(Block, Assoc) > Assoc) {
      AllCached = false;
      break;
    }
  if (AllCached)
    return;

  Payload &PL = mut();
  for (RefSetPartition &Part : PL.Parts) {
    if (!IsCandidateSet(Part.Set))
      continue;
    std::vector<AgedBlock> &Must = Part.Must;
    for (size_t I = 0; I != Must.size();) {
      if (++Must[I].Age > Assoc) {
        Must.erase(Must.begin() + static_cast<ptrdiff_t>(I));
        continue;
      }
      ++I;
    }
  }
  if (UseShadow) {
    for (BlockAddr Block : ArrayBlocks) {
      size_t Idx = ensurePart(PL.Parts, MM.setOf(Block));
      setAge(PL.Parts[Idx].May, Block, 1);
    }
  }
  normalize();
}

void RefCacheState::accessUnknownPlru(VarId Var, uint64_t InstanceK,
                                      const MemoryModel &MM, bool UseShadow) {
  uint32_t Cap = MM.config().mustAgeCap();
  std::vector<uint32_t> Sets = MM.setsOf(Var); // Sorted, deduplicated.
  auto IsCandidateSet = [&](uint32_t Set) {
    return std::binary_search(Sets.begin(), Sets.end(), Set);
  };

  Payload &PL = mut();
  for (RefSetPartition &Part : PL.Parts) {
    if (!IsCandidateSet(Part.Set))
      continue;
    std::vector<AgedBlock> &Must = Part.Must;
    for (size_t I = 0; I != Must.size();) {
      if (++Must[I].Age > Cap) {
        Must.erase(Must.begin() + static_cast<ptrdiff_t>(I));
        continue;
      }
      ++I;
    }
  }
  BlockAddr Instance = MM.symbolicBlock(Var, InstanceK);
  size_t Idx = ensurePart(PL.Parts, MM.setOf(Instance));
  setAge(PL.Parts[Idx].Must, Instance, 1);

  if (UseShadow) {
    std::vector<BlockAddr> ArrayBlocks = MM.blocksOf(Var);
    for (BlockAddr Block : ArrayBlocks) {
      size_t I = ensurePart(PL.Parts, MM.setOf(Block));
      setAge(PL.Parts[I].May, Block, 1);
    }
    size_t I = ensurePart(PL.Parts, MM.setOf(Instance));
    setAge(PL.Parts[I].May, Instance, 1);
  }
  normalize();
}

void RefCacheState::applyCallEffect(const std::vector<uint32_t> &SetPressure,
                                    const std::vector<AgedBlock> &ExitMust,
                                    const std::vector<BlockAddr> &MayBlocks,
                                    const MemoryModel &MM, bool UseShadow,
                                    bool InsertExitMust, bool ApplyPressure) {
  if (Bottom)
    return;
  uint32_t Assoc = MM.config().Associativity;
  bool IsLru = MM.config().Policy == ReplacementPolicy::Lru;

  if (ApplyPressure) {
    bool AnyWork = false;
    for (const RefSetPartition &Part : partitions())
      if (Part.Set < SetPressure.size() && SetPressure[Part.Set] > 0 &&
          !Part.Must.empty()) {
        AnyWork = true;
        break;
      }
    if (AnyWork) {
      Payload &PL = mut();
      for (RefSetPartition &Part : PL.Parts) {
        uint32_t K =
            Part.Set < SetPressure.size() ? SetPressure[Part.Set] : 0;
        if (K == 0 || Part.Must.empty())
          continue;
        if (!IsLru) {
          Part.Must.clear();
          continue;
        }
        std::vector<AgedBlock> &Must = Part.Must;
        for (size_t I = 0; I != Must.size();) {
          uint32_t NewAge = Must[I].Age + K;
          if (NewAge > Assoc) {
            Must.erase(Must.begin() + static_cast<ptrdiff_t>(I));
            continue;
          }
          Must[I].Age = static_cast<uint16_t>(NewAge);
          ++I;
        }
      }
    }
  }

  if (InsertExitMust && !ExitMust.empty()) {
    Payload &PL = mut();
    for (const AgedBlock &E : ExitMust) {
      size_t Idx = ensurePart(PL.Parts, MM.setOf(E.Block));
      std::vector<AgedBlock> &Must = PL.Parts[Idx].Must;
      auto It = std::lower_bound(
          Must.begin(), Must.end(), E.Block,
          [](const AgedBlock &A, BlockAddr B) { return A.Block < B; });
      if (It != Must.end() && It->Block == E.Block)
        It->Age = std::min(It->Age, E.Age);
      else
        Must.insert(It, E);
    }
  }

  if (UseShadow && !MayBlocks.empty()) {
    Payload &PL = mut();
    for (BlockAddr Block : MayBlocks) {
      size_t Idx = ensurePart(PL.Parts, MM.setOf(Block));
      setAge(PL.Parts[Idx].May, Block, 1);
    }
  }
  normalize();
}

namespace {

/// Would `Into ⊔= From` change Into? A pure read-only merge walk.
bool joinWouldChange(const std::vector<RefSetPartition> &Into,
                     const std::vector<RefSetPartition> &From,
                     bool UseShadow) {
  size_t I = 0, J = 0;
  while (I != Into.size() || J != From.size()) {
    if (J == From.size() ||
        (I != Into.size() && Into[I].Set < From[J].Set)) {
      if (!Into[I].Must.empty())
        return true; // Whole partition leaves the MUST intersection.
      ++I;
      continue;
    }
    if (I == Into.size() || Into[I].Set > From[J].Set) {
      if (UseShadow && !From[J].May.empty())
        return true; // New MAY partition enters the union.
      ++J;
      continue;
    }
    const RefSetPartition &A = Into[I], &B = From[J];
    {
      size_t X = 0, Y = 0;
      while (X != A.Must.size()) {
        if (Y == B.Must.size() || A.Must[X].Block < B.Must[Y].Block)
          return true; // Dropped from the intersection.
        if (A.Must[X].Block > B.Must[Y].Block) {
          ++Y;
          continue;
        }
        if (B.Must[Y].Age > A.Must[X].Age)
          return true; // Age grows to the max.
        ++X;
        ++Y;
      }
    }
    if (UseShadow) {
      size_t X = 0, Y = 0;
      while (Y != B.May.size()) {
        if (X == A.May.size() || A.May[X].Block > B.May[Y].Block)
          return true; // New shadow entry.
        if (A.May[X].Block < B.May[Y].Block) {
          ++X;
          continue;
        }
        if (B.May[Y].Age < A.May[X].Age)
          return true; // Age shrinks to the min.
        ++X;
        ++Y;
      }
    }
    ++I;
    ++J;
  }
  return false;
}

/// MUST intersection with max ages.
std::vector<AgedBlock> mergeMust(const std::vector<AgedBlock> &A,
                                 const std::vector<AgedBlock> &B) {
  std::vector<AgedBlock> Out;
  Out.reserve(std::min(A.size(), B.size()));
  size_t I = 0, J = 0;
  while (I != A.size() && J != B.size()) {
    if (A[I].Block < B[J].Block)
      ++I;
    else if (A[I].Block > B[J].Block)
      ++J;
    else {
      Out.push_back(AgedBlock{A[I].Block, std::max(A[I].Age, B[J].Age)});
      ++I;
      ++J;
    }
  }
  return Out;
}

/// MAY union with min ages.
std::vector<AgedBlock> mergeMay(const std::vector<AgedBlock> &A,
                                const std::vector<AgedBlock> &B) {
  std::vector<AgedBlock> Out;
  Out.reserve(A.size() + B.size());
  size_t I = 0, J = 0;
  while (I != A.size() || J != B.size()) {
    if (J == B.size() || (I != A.size() && A[I].Block < B[J].Block))
      Out.push_back(A[I++]);
    else if (I == A.size() || A[I].Block > B[J].Block)
      Out.push_back(B[J++]);
    else {
      Out.push_back(AgedBlock{A[I].Block, std::min(A[I].Age, B[J].Age)});
      ++I;
      ++J;
    }
  }
  return Out;
}

} // namespace

bool RefCacheState::joinInto(const RefCacheState &From, bool UseShadow) {
  if (From.Bottom)
    return false;
  if (Bottom) {
    Bottom = false;
    P = From.P; // Copy-on-write: a refcount bump, not an entry copy.
    if (!UseShadow && P) {
      bool AnyMay = false;
      for (const RefSetPartition &Part : P->Parts)
        if (!Part.May.empty()) {
          AnyMay = true;
          break;
        }
      if (AnyMay) {
        Payload &PL = mut();
        for (RefSetPartition &Part : PL.Parts)
          Part.May.clear();
        normalize();
      }
    }
    return true;
  }
  if (P == From.P)
    return false; // Shared storage: identical states, join is a no-op.

  const std::vector<RefSetPartition> &Into = partitions();
  const std::vector<RefSetPartition> &Src = From.partitions();
  if (!joinWouldChange(Into, Src, UseShadow))
    return false;

  auto NewP = std::make_shared<Payload>();
  std::vector<RefSetPartition> &Out = NewP->Parts;
  Out.reserve(std::max(Into.size(), Src.size()));
  size_t I = 0, J = 0;
  while (I != Into.size() || J != Src.size()) {
    RefSetPartition Part;
    if (J == Src.size() || (I != Into.size() && Into[I].Set < Src[J].Set)) {
      Part.Set = Into[I].Set;
      Part.May = Into[I].May;
      ++I;
    } else if (I == Into.size() || Into[I].Set > Src[J].Set) {
      Part.Set = Src[J].Set;
      if (UseShadow)
        Part.May = Src[J].May;
      ++J;
    } else {
      Part.Set = Into[I].Set;
      Part.Must = mergeMust(Into[I].Must, Src[J].Must);
      Part.May = UseShadow ? mergeMay(Into[I].May, Src[J].May) : Into[I].May;
      ++I;
      ++J;
    }
    if (!Part.Must.empty() || !Part.May.empty())
      Out.push_back(std::move(Part));
  }
  if (Out.empty())
    P.reset();
  else
    P = std::move(NewP);
  return true;
}

bool RefCacheState::leq(const RefCacheState &RHS, uint32_t Assoc) const {
  if (Bottom)
    return true;
  if (RHS.Bottom)
    return false;
  for (const RefSetPartition &RPart : RHS.partitions()) {
    const RefSetPartition *LPart = findPart(RPart.Set);
    for (const AgedBlock &E : RPart.Must) {
      uint32_t Mine = LPart ? ageIn(LPart->Must, E.Block, Assoc) : Assoc + 1;
      if (Mine > E.Age)
        return false;
    }
  }
  for (const RefSetPartition &LPart : partitions()) {
    const RefSetPartition *RPart = RHS.findPart(LPart.Set);
    for (const AgedBlock &E : LPart.May) {
      uint32_t Theirs = RPart ? ageIn(RPart->May, E.Block, Assoc) : Assoc + 1;
      if (E.Age < Theirs)
        return false;
    }
  }
  return true;
}

void RefCacheState::widenFrom(const RefCacheState &Prev, uint32_t Assoc) {
  if (Bottom || Prev.Bottom)
    return;
  auto Grew = [&](const RefSetPartition &Part, const AgedBlock &E) {
    const RefSetPartition *PPart = Prev.findPart(Part.Set);
    uint32_t PrevAge = PPart ? ageIn(PPart->Must, E.Block, Assoc) : Assoc + 1;
    return PrevAge <= Assoc && E.Age > PrevAge;
  };
  bool AnyGrew = false;
  for (const RefSetPartition &Part : partitions()) {
    for (const AgedBlock &E : Part.Must)
      if (Grew(Part, E)) {
        AnyGrew = true;
        break;
      }
    if (AnyGrew)
      break;
  }
  if (!AnyGrew)
    return;
  Payload &PL = mut();
  for (RefSetPartition &Part : PL.Parts)
    Part.Must.erase(std::remove_if(Part.Must.begin(), Part.Must.end(),
                                   [&](const AgedBlock &E) {
                                     return Grew(Part, E);
                                   }),
                    Part.Must.end());
  normalize();
}

bool RefCacheState::operator==(const RefCacheState &RHS) const {
  if (Bottom != RHS.Bottom)
    return false;
  if (Bottom)
    return true;
  if (P == RHS.P)
    return true; // Shared storage (or both empty).
  return partitions() == RHS.partitions();
}

std::vector<AgedBlock> RefCacheState::mustEntries() const {
  std::vector<AgedBlock> Out;
  for (const RefSetPartition &Part : partitions())
    Out.insert(Out.end(), Part.Must.begin(), Part.Must.end());
  std::sort(Out.begin(), Out.end(),
            [](const AgedBlock &A, const AgedBlock &B) {
              return A.Block < B.Block;
            });
  return Out;
}

std::vector<AgedBlock> RefCacheState::mayEntries() const {
  std::vector<AgedBlock> Out;
  for (const RefSetPartition &Part : partitions())
    Out.insert(Out.end(), Part.May.begin(), Part.May.end());
  std::sort(Out.begin(), Out.end(),
            [](const AgedBlock &A, const AgedBlock &B) {
              return A.Block < B.Block;
            });
  return Out;
}

std::string RefCacheState::str(const MemoryModel &MM) const {
  if (Bottom)
    return "⊥";
  std::map<uint32_t, std::vector<std::string>> ByAge;
  for (const RefSetPartition &Part : partitions()) {
    for (const AgedBlock &E : Part.Must)
      ByAge[E.Age].push_back(MM.blockName(E.Block));
    for (const AgedBlock &E : Part.May)
      ByAge[E.Age].push_back("∃" + MM.blockName(E.Block));
  }
  std::string Out = "{";
  bool FirstGroup = true;
  for (auto &[Age, Names] : ByAge) {
    std::sort(Names.begin(), Names.end());
    for (const std::string &Name : Names) {
      if (!FirstGroup)
        Out += ", ";
      FirstGroup = false;
      Out += Name + "@" + std::to_string(Age);
    }
  }
  Out += "}";
  return Out;
}
