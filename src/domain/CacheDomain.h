//===- CacheDomain.h - Engine adapter for the cache domain ------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binds the abstract cache state to a concrete Program: interprets Load
/// and Store nodes (known-index accesses touch their exact block, unknown
/// indices take the conservative transfer with a fresh symbolic instance),
/// and answers must-hit classification queries. This is the Domain the
/// worklist engines (Algorithms 1-3) are instantiated with for every
/// experiment in the paper. The aging rule the transfers apply follows
/// the replacement policy of the MemoryModel's cache config (LRU / FIFO /
/// tree-PLRU; docs/DOMAINS.md), so one domain serves all policy variants.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_DOMAIN_CACHEDOMAIN_H
#define SPECAI_DOMAIN_CACHEDOMAIN_H

#include "cfg/FlatCfg.h"
#include "domain/CacheState.h"
#include "memory/MemoryModel.h"

#include <vector>

namespace specai {

/// Options of the cache domain.
struct CacheDomainOptions {
  /// Appendix B shadow-variable refinement (on by default; Figure 11/13).
  bool UseShadow = true;
};

/// Engine-facing cache domain. Holds per-array instance counters, so it is
/// stateful across transfer applications (the paper's decis_lev[1*],
/// decis_lev[2*] successive nondeterministic picks).
class CacheDomain {
public:
  using State = CacheAbsState;

  CacheDomain(const FlatCfg &G, const MemoryModel &MM,
              CacheDomainOptions Options = {})
      : G(&G), MM(&MM), Options(Options),
        InstanceCounters(MM.program().Vars.size(), 0) {}

  State bottom() const { return State::bottom(); }
  /// Entry state: empty cache (top of the MUST lattice).
  State entry() const { return State::empty(); }
  bool isBottom(const State &S) const { return S.isBottom(); }

  /// Applies node \p N's effect to \p S. Only Load/Store nodes touch the
  /// state.
  void transfer(State &S, NodeId N);

  /// Transfer for nodes executed inside a speculative window (the SS
  /// flows of Algorithm 3). Speculative *stores* sit in the store buffer
  /// and are squashed on rollback — they never fill or refresh a cache
  /// line (Figure 3's right-hand trace; pipeline/SpeculativeCpu.h) — so a
  /// Store node is a cache no-op here. Applying the committed-store
  /// transfer instead is unsound: it would refresh the stored block's MUST
  /// age while the concrete line ages or evicts (found by specai-fuzz;
  /// docs/FUZZING.md shows the two-line counterexample). Loads behave as
  /// in transfer(): a speculative load does fill the cache.
  void transferSpeculative(State &S, NodeId N) {
    if (G->inst(N).Op == Opcode::Store)
      return;
    transfer(S, N);
  }

  /// this ⊔= From; true iff changed.
  bool joinInto(State &Into, const State &From) const {
    return Into.joinInto(From, Options.UseShadow);
  }

  /// True iff node \p N's transfer leaves every state unchanged: nodes
  /// that do not touch memory, and Store nodes inside speculative windows
  /// (the store buffer squashes them). The engines alias the input state
  /// instead of copying it for such nodes.
  bool isTransferIdentity(NodeId N, bool Speculative) const {
    const Instruction &I = G->inst(N);
    if (!I.accessesMemory())
      return true;
    return Speculative && I.Op == Opcode::Store;
  }

  /// True iff node \p N's transfer is a pure function of the input state
  /// (identity nodes and known-block accesses) — and therefore memoizable.
  /// Unknown-index accesses are *stateful*: each application consumes a
  /// fresh symbolic instance from InstanceCounters, so replaying a cached
  /// result would change the instance sequence and with it the analysis.
  bool isTransferPure(NodeId N, bool Speculative) const {
    const Instruction &I = G->inst(N);
    if (!I.accessesMemory())
      return true;
    if (Speculative && I.Op == Opcode::Store)
      return true;
    const MemVar &Var = MM->program().Vars[I.Var];
    return Var.NumElements == 1 || I.Index.isImm();
  }

  /// Structural state hash for the engines' transfer memo and interner.
  uint64_t stateHash(const State &S) const { return S.structuralHash(); }

  void widen(State &Cur, const State &Prev) const {
    Cur.widenFrom(Prev, MM->config().Associativity);
  }

  /// True iff node \p N is a memory access that is a guaranteed cache hit
  /// in state \p S (evaluated on the state *before* the access). Unknown
  /// indices must-hit only when every line of the array is resident.
  bool isMustHit(const State &S, NodeId N) const;

  /// Three-way classification used by the side-channel detector: an access
  /// is timing-uniform when it is a guaranteed hit or a guaranteed miss
  /// for every line it could touch; only Mixed accesses can leak. MustMiss
  /// is certified through the MAY (shadow) set — a block absent from MAY
  /// is not cached on any path — and therefore only available when the
  /// shadow refinement is enabled.
  enum class AccessClass { MustHit, MustMiss, Mixed };
  AccessClass classifyAccess(const State &S, NodeId N) const;

  /// True iff \p N accesses memory at all.
  bool accessesMemory(NodeId N) const {
    return G->inst(N).accessesMemory();
  }

  const MemoryModel &memoryModel() const { return *MM; }
  const FlatCfg &cfg() const { return *G; }
  const CacheDomainOptions &options() const { return Options; }

  /// Resets the symbolic-instance counters (between independent runs).
  void resetInstances() {
    std::fill(InstanceCounters.begin(), InstanceCounters.end(), 0);
  }

private:
  const FlatCfg *G;
  const MemoryModel *MM;
  CacheDomainOptions Options;
  /// Per array: next symbolic instance ordinal.
  std::vector<uint64_t> InstanceCounters;
};

} // namespace specai

#endif // SPECAI_DOMAIN_CACHEDOMAIN_H
