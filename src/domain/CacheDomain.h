//===- CacheDomain.h - Engine adapter for the cache domain ------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binds the abstract cache state to a concrete Program: interprets Load
/// and Store nodes (known-index accesses touch their exact block, unknown
/// indices take the conservative transfer with a fresh symbolic instance),
/// and answers must-hit classification queries. This is the Domain the
/// worklist engines (Algorithms 1-3) are instantiated with for every
/// experiment in the paper. The aging rule the transfers apply follows
/// the replacement policy of the MemoryModel's cache config (LRU / FIFO /
/// tree-PLRU; docs/DOMAINS.md), so one domain serves all policy variants.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_DOMAIN_CACHEDOMAIN_H
#define SPECAI_DOMAIN_CACHEDOMAIN_H

#include "cfg/FlatCfg.h"
#include "domain/CacheState.h"
#include "memory/MemoryModel.h"

#include <vector>

namespace specai {

/// Summarize mode: the speculative cache summary of one callee, computed
/// bottom-up over the acyclic call graph (analysis/AnalysisPipeline.cpp)
/// and applied by the Call-node transfer (CacheAbsState::applyCallEffect;
/// DESIGN.md §4). All bounds are valid for *every* call context
/// because the callee is analyzed from the unknown entry state.
struct CallSummary {
  /// Distinct concrete lines the callee (including its transitive callees)
  /// may touch, sorted and deduplicated. Unknown-index array accesses
  /// contribute every line of the array.
  std::vector<BlockAddr> MayBlocks;
  /// Per cache set: how many MayBlocks map to it (the distinct-line aging
  /// pressure). Indexed by set id, sized to the cache's set count.
  std::vector<uint32_t> SetPressure;
  /// Blocks provably resident at every callee exit with their exit age
  /// bounds, from the join of the observable states at all reachable Ret
  /// nodes. Symbolic instance blocks are excluded (they name no concrete
  /// line).
  std::vector<AgedBlock> ExitMust;
};

/// Options of the cache domain.
struct CacheDomainOptions {
  /// Appendix B shadow-variable refinement (on by default; Figure 11/13).
  bool UseShadow = true;
  /// Summarize mode: per-callee summaries indexed by Instruction::Callee.
  /// Null outside Summarize mode; Call nodes are then identity (the
  /// InlineUnroll lowering never emits them).
  const std::vector<CallSummary> *Summaries = nullptr;
  /// Fault injection (stale-summary): the Call transfer skips the callee's
  /// aging pressure, leaving stale MUST bounds in place. Deliberately
  /// unsound; only the lowering self-test sets this.
  bool StaleSummaryFault = false;
};

/// Engine-facing cache domain. Holds per-array instance counters, so it is
/// stateful across transfer applications (the paper's decis_lev[1*],
/// decis_lev[2*] successive nondeterministic picks).
class CacheDomain {
public:
  using State = CacheAbsState;

  CacheDomain(const FlatCfg &G, const MemoryModel &MM,
              CacheDomainOptions Options = {})
      : G(&G), MM(&MM), Options(Options),
        InstanceCounters(MM.program().Vars.size(), 0) {}

  State bottom() const { return State::bottom(); }
  /// Entry state: empty cache (top of the MUST lattice).
  State entry() const { return State::empty(); }
  bool isBottom(const State &S) const { return S.isBottom(); }

  /// Applies node \p N's effect to \p S. Load/Store nodes touch the state;
  /// Call nodes apply the callee's summary (Summarize mode).
  void transfer(State &S, NodeId N);

  /// Transfer for nodes executed inside a speculative window (the SS
  /// flows of Algorithm 3). Speculative *stores* sit in the store buffer
  /// and are squashed on rollback — they never fill or refresh a cache
  /// line (Figure 3's right-hand trace; pipeline/SpeculativeCpu.h) — so a
  /// Store node is a cache no-op here. Applying the committed-store
  /// transfer instead is unsound: it would refresh the stored block's MUST
  /// age while the concrete line ages or evicts (found by specai-fuzz;
  /// docs/FUZZING.md shows the two-line counterexample). Loads behave as
  /// in transfer(): a speculative load does fill the cache.
  /// A speculative Call may roll back mid-callee: any *subset* of the
  /// callee's accesses may have executed, so only the aging pressure and
  /// MAY enlargement apply — never the exit-must insertion, which assumes
  /// the callee ran to completion.
  void transferSpeculative(State &S, NodeId N) {
    const Instruction &I = G->inst(N);
    if (I.Op == Opcode::Store)
      return;
    if (I.Op == Opcode::Call) {
      applyCall(S, I, /*Speculative=*/true);
      return;
    }
    transfer(S, N);
  }

  /// this ⊔= From; true iff changed.
  bool joinInto(State &Into, const State &From) const {
    return Into.joinInto(From, Options.UseShadow);
  }

  /// True iff node \p N's transfer leaves every state unchanged: nodes
  /// that do not touch memory, and Store nodes inside speculative windows
  /// (the store buffer squashes them). The engines alias the input state
  /// instead of copying it for such nodes.
  bool isTransferIdentity(NodeId N, bool Speculative) const {
    const Instruction &I = G->inst(N);
    if (I.Op == Opcode::Call)
      return !Options.Summaries;
    if (!I.accessesMemory())
      return true;
    return Speculative && I.Op == Opcode::Store;
  }

  /// True iff node \p N's transfer is a pure function of the input state
  /// (identity nodes and known-block accesses) — and therefore memoizable.
  /// Unknown-index accesses are *stateful*: each application consumes a
  /// fresh symbolic instance from InstanceCounters, so replaying a cached
  /// result would change the instance sequence and with it the analysis.
  bool isTransferPure(NodeId N, bool Speculative) const {
    const Instruction &I = G->inst(N);
    if (I.Op == Opcode::Call)
      return true; // Summary application is a pure function of the state.
    if (!I.accessesMemory())
      return true;
    if (Speculative && I.Op == Opcode::Store)
      return true;
    const MemVar &Var = MM->program().Vars[I.Var];
    return Var.NumElements == 1 || I.Index.isImm();
  }

  /// Structural state hash for the engines' transfer memo and interner.
  uint64_t stateHash(const State &S) const { return S.structuralHash(); }

  void widen(State &Cur, const State &Prev) const {
    Cur.widenFrom(Prev, MM->config().Associativity);
  }

  /// True iff node \p N is a memory access that is a guaranteed cache hit
  /// in state \p S (evaluated on the state *before* the access). Unknown
  /// indices must-hit only when every line of the array is resident.
  bool isMustHit(const State &S, NodeId N) const;

  /// Three-way classification used by the side-channel detector: an access
  /// is timing-uniform when it is a guaranteed hit or a guaranteed miss
  /// for every line it could touch; only Mixed accesses can leak. MustMiss
  /// is certified through the MAY (shadow) set — a block absent from MAY
  /// is not cached on any path — and therefore only available when the
  /// shadow refinement is enabled.
  enum class AccessClass { MustHit, MustMiss, Mixed };
  AccessClass classifyAccess(const State &S, NodeId N) const;

  /// True iff \p N accesses memory at all.
  bool accessesMemory(NodeId N) const {
    return G->inst(N).accessesMemory();
  }

  const MemoryModel &memoryModel() const { return *MM; }
  const FlatCfg &cfg() const { return *G; }
  const CacheDomainOptions &options() const { return Options; }

  /// Resets the symbolic-instance counters (between independent runs).
  void resetInstances() {
    std::fill(InstanceCounters.begin(), InstanceCounters.end(), 0);
  }

private:
  /// Call-node transfer: applies the callee's summary to \p S.
  void applyCall(State &S, const Instruction &I, bool Speculative);

  const FlatCfg *G;
  const MemoryModel *MM;
  CacheDomainOptions Options;
  /// Per array: next symbolic instance ordinal.
  std::vector<uint64_t> InstanceCounters;
};

} // namespace specai

#endif // SPECAI_DOMAIN_CACHEDOMAIN_H
