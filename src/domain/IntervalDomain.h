//===- IntervalDomain.h - Interval abstract domain --------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic interval domain over registers and scalar memory variables.
/// The paper stresses that the virtual-control-flow lifting "is generally
/// applicable, regardless of how the abstract state is defined" (§1) and
/// names the interval domain explicitly; this instantiation demonstrates
/// the engines are domain-generic: the same worklist and speculative
/// engines run over intervals unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_DOMAIN_INTERVALDOMAIN_H
#define SPECAI_DOMAIN_INTERVALDOMAIN_H

#include "cfg/FlatCfg.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>

namespace specai {

/// A (possibly unbounded) integer interval [Lo, Hi].
struct Interval {
  static constexpr int64_t NegInf = std::numeric_limits<int64_t>::min();
  static constexpr int64_t PosInf = std::numeric_limits<int64_t>::max();

  int64_t Lo = NegInf;
  int64_t Hi = PosInf;

  static Interval top() { return Interval(); }
  static Interval constant(int64_t V) { return Interval{V, V}; }

  bool isTop() const { return Lo == NegInf && Hi == PosInf; }
  bool isConstant() const { return Lo == Hi; }
  bool contains(int64_t V) const { return Lo <= V && V <= Hi; }

  Interval join(const Interval &RHS) const {
    return Interval{std::min(Lo, RHS.Lo), std::max(Hi, RHS.Hi)};
  }
  /// Standard interval widening: unstable bounds jump to infinity.
  Interval widen(const Interval &Prev) const {
    return Interval{Lo < Prev.Lo ? NegInf : Lo, Hi > Prev.Hi ? PosInf : Hi};
  }

  Interval add(const Interval &RHS) const;
  Interval sub(const Interval &RHS) const;
  Interval mul(const Interval &RHS) const;
  /// Comparison result as a 0/1 interval (collapses when decided).
  static Interval fromBool(bool CanBeFalse, bool CanBeTrue);

  bool operator==(const Interval &RHS) const = default;

  std::string str() const;
};

/// State: intervals for registers and scalar memory variables. Arrays are
/// not tracked (their elements read as top).
class IntervalState {
public:
  static IntervalState bottom() {
    IntervalState S;
    S.Bottom = true;
    return S;
  }
  static IntervalState top() { return IntervalState(); }

  bool isBottom() const { return Bottom; }

  Interval reg(RegId R) const;
  Interval scalar(VarId V) const;
  void setReg(RegId R, Interval I);
  void setScalar(VarId V, Interval I);

  bool joinInto(const IntervalState &From);
  void widenFrom(const IntervalState &Prev);
  bool operator==(const IntervalState &RHS) const = default;

  std::string str() const;

private:
  bool Bottom = false;
  // Top entries are dropped so states stay small; absent = top.
  std::map<RegId, Interval> Regs;
  std::map<VarId, Interval> Scalars;
};

/// Engine-facing interval domain over a flat CFG.
class IntervalDomain {
public:
  using State = IntervalState;

  explicit IntervalDomain(const FlatCfg &G) : G(&G) {}

  State bottom() const { return State::bottom(); }
  State entry() const { return State::top(); }
  bool isBottom(const State &S) const { return S.isBottom(); }

  void transfer(State &S, NodeId N);
  /// In speculative windows stores are buffered and squashed, never
  /// reaching memory (ir/Interp.h's SuppressStores; there is no
  /// store-to-load forwarding in the substrate), so a speculative Store
  /// must not update the stored scalar's interval.
  void transferSpeculative(State &S, NodeId N) {
    if (G->inst(N).Op == Opcode::Store)
      return;
    transfer(S, N);
  }
  bool joinInto(State &Into, const State &From) const {
    return Into.joinInto(From);
  }
  void widen(State &Cur, const State &Prev) const { Cur.widenFrom(Prev); }

  /// Intervals carry no cache information, so no access is ever a provable
  /// hit; the speculative engine's dynamic depth bounding simply keeps
  /// b_miss for every site under this domain.
  bool isMustHit(const State &, NodeId) const { return false; }

  const FlatCfg &cfg() const { return *G; }

private:
  Interval evalOperand(const State &S, const Operand &Op) const;

  const FlatCfg *G;
};

} // namespace specai

#endif // SPECAI_DOMAIN_INTERVALDOMAIN_H
