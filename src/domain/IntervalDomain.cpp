//===- IntervalDomain.cpp -------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "domain/IntervalDomain.h"

using namespace specai;

namespace {

/// Saturating add that keeps infinities absorbing.
int64_t satAdd(int64_t A, int64_t B) {
  if (A == Interval::NegInf || B == Interval::NegInf)
    return Interval::NegInf;
  if (A == Interval::PosInf || B == Interval::PosInf)
    return Interval::PosInf;
  int64_t R;
  if (__builtin_add_overflow(A, B, &R))
    return B > 0 ? Interval::PosInf : Interval::NegInf;
  return R;
}

int64_t satNeg(int64_t A) {
  if (A == Interval::NegInf)
    return Interval::PosInf;
  if (A == Interval::PosInf)
    return Interval::NegInf;
  return -A;
}

int64_t satMul(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  bool Neg = (A < 0) != (B < 0);
  if (A == Interval::NegInf || A == Interval::PosInf ||
      B == Interval::NegInf || B == Interval::PosInf)
    return Neg ? Interval::NegInf : Interval::PosInf;
  int64_t R;
  if (__builtin_mul_overflow(A, B, &R))
    return Neg ? Interval::NegInf : Interval::PosInf;
  return R;
}

} // namespace

Interval Interval::add(const Interval &RHS) const {
  return Interval{satAdd(Lo, RHS.Lo), satAdd(Hi, RHS.Hi)};
}

Interval Interval::sub(const Interval &RHS) const {
  return Interval{satAdd(Lo, satNeg(RHS.Hi)), satAdd(Hi, satNeg(RHS.Lo))};
}

Interval Interval::mul(const Interval &RHS) const {
  int64_t Candidates[4] = {satMul(Lo, RHS.Lo), satMul(Lo, RHS.Hi),
                           satMul(Hi, RHS.Lo), satMul(Hi, RHS.Hi)};
  int64_t NewLo = Candidates[0], NewHi = Candidates[0];
  for (int64_t C : Candidates) {
    NewLo = std::min(NewLo, C);
    NewHi = std::max(NewHi, C);
  }
  return Interval{NewLo, NewHi};
}

Interval Interval::fromBool(bool CanBeFalse, bool CanBeTrue) {
  if (CanBeFalse && CanBeTrue)
    return Interval{0, 1};
  if (CanBeTrue)
    return Interval{1, 1};
  return Interval{0, 0};
}

std::string Interval::str() const {
  auto Bound = [](int64_t V) {
    if (V == NegInf)
      return std::string("-inf");
    if (V == PosInf)
      return std::string("+inf");
    return std::to_string(V);
  };
  return "[" + Bound(Lo) + ", " + Bound(Hi) + "]";
}

Interval IntervalState::reg(RegId R) const {
  auto It = Regs.find(R);
  return It == Regs.end() ? Interval::top() : It->second;
}

Interval IntervalState::scalar(VarId V) const {
  auto It = Scalars.find(V);
  return It == Scalars.end() ? Interval::top() : It->second;
}

void IntervalState::setReg(RegId R, Interval I) {
  if (I.isTop())
    Regs.erase(R);
  else
    Regs[R] = I;
}

void IntervalState::setScalar(VarId V, Interval I) {
  if (I.isTop())
    Scalars.erase(V);
  else
    Scalars[V] = I;
}

bool IntervalState::joinInto(const IntervalState &From) {
  if (From.Bottom)
    return false;
  if (Bottom) {
    *this = From;
    return true;
  }
  bool Changed = false;
  // Entries absent on either side are top; join(top, x) = top, so the
  // result keeps only keys present on both sides.
  auto JoinMap = [&](auto &Mine, const auto &Theirs) {
    for (auto It = Mine.begin(); It != Mine.end();) {
      auto Found = Theirs.find(It->first);
      if (Found == Theirs.end()) {
        It = Mine.erase(It);
        Changed = true;
        continue;
      }
      Interval Joined = It->second.join(Found->second);
      if (!(Joined == It->second)) {
        It->second = Joined;
        Changed = true;
      }
      if (It->second.isTop()) {
        It = Mine.erase(It);
        continue;
      }
      ++It;
    }
  };
  JoinMap(Regs, From.Regs);
  JoinMap(Scalars, From.Scalars);
  return Changed;
}

void IntervalState::widenFrom(const IntervalState &Prev) {
  if (Bottom || Prev.Bottom)
    return;
  for (auto It = Regs.begin(); It != Regs.end();) {
    auto Found = Prev.Regs.find(It->first);
    Interval Widened =
        It->second.widen(Found == Prev.Regs.end() ? It->second : Found->second);
    if (Found == Prev.Regs.end()) {
      // New key since the previous iterate: keep as is (it can only join
      // toward top later).
      ++It;
      continue;
    }
    It->second = Widened;
    if (It->second.isTop()) {
      It = Regs.erase(It);
      continue;
    }
    ++It;
  }
  for (auto It = Scalars.begin(); It != Scalars.end();) {
    auto Found = Prev.Scalars.find(It->first);
    if (Found == Prev.Scalars.end()) {
      ++It;
      continue;
    }
    It->second = It->second.widen(Found->second);
    if (It->second.isTop()) {
      It = Scalars.erase(It);
      continue;
    }
    ++It;
  }
}

std::string IntervalState::str() const {
  if (Bottom)
    return "⊥";
  std::string Out = "{";
  bool First = true;
  for (const auto &[R, I] : Regs) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "r" + std::to_string(R) + "=" + I.str();
  }
  for (const auto &[V, I] : Scalars) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "v" + std::to_string(V) + "=" + I.str();
  }
  return Out + "}";
}

Interval IntervalDomain::evalOperand(const State &S, const Operand &Op) const {
  switch (Op.K) {
  case Operand::Kind::None:
    return Interval::constant(0);
  case Operand::Kind::Imm:
    return Interval::constant(Op.Imm);
  case Operand::Kind::Reg:
    return S.reg(Op.Reg);
  }
  return Interval::top();
}

void IntervalDomain::transfer(State &S, NodeId N) {
  if (S.isBottom())
    return;
  const Instruction &I = G->inst(N);
  switch (I.Op) {
  case Opcode::Mov:
    S.setReg(I.Dst, evalOperand(S, I.A));
    return;
  case Opcode::Bin: {
    Interval L = evalOperand(S, I.A);
    Interval R = evalOperand(S, I.B);
    Interval Out = Interval::top();
    switch (I.BinOp) {
    case IrBinOp::Add:
      Out = L.add(R);
      break;
    case IrBinOp::Sub:
      Out = L.sub(R);
      break;
    case IrBinOp::Mul:
      Out = L.mul(R);
      break;
    case IrBinOp::Eq:
      if (L.isConstant() && R.isConstant())
        Out = Interval::fromBool(L.Lo != R.Lo, L.Lo == R.Lo);
      else if (L.Hi < R.Lo || R.Hi < L.Lo)
        Out = Interval::fromBool(true, false);
      else
        Out = Interval{0, 1};
      break;
    case IrBinOp::Ne:
      if (L.isConstant() && R.isConstant())
        Out = Interval::fromBool(L.Lo == R.Lo, L.Lo != R.Lo);
      else if (L.Hi < R.Lo || R.Hi < L.Lo)
        Out = Interval::fromBool(false, true);
      else
        Out = Interval{0, 1};
      break;
    case IrBinOp::Lt:
      if (L.Hi < R.Lo)
        Out = Interval{1, 1};
      else if (L.Lo >= R.Hi)
        Out = Interval{0, 0};
      else
        Out = Interval{0, 1};
      break;
    case IrBinOp::Le:
      if (L.Hi <= R.Lo)
        Out = Interval{1, 1};
      else if (L.Lo > R.Hi)
        Out = Interval{0, 0};
      else
        Out = Interval{0, 1};
      break;
    case IrBinOp::Gt:
      if (L.Lo > R.Hi)
        Out = Interval{1, 1};
      else if (L.Hi <= R.Lo)
        Out = Interval{0, 0};
      else
        Out = Interval{0, 1};
      break;
    case IrBinOp::Ge:
      if (L.Lo >= R.Hi)
        Out = Interval{1, 1};
      else if (L.Hi < R.Lo)
        Out = Interval{0, 0};
      else
        Out = Interval{0, 1};
      break;
    default:
      // Division, shifts, bitwise ops: give up to top (sound).
      Out = Interval::top();
      break;
    }
    S.setReg(I.Dst, Out);
    return;
  }
  case Opcode::Load: {
    const MemVar &Var = G->program().Vars[I.Var];
    if (Var.NumElements == 1)
      S.setReg(I.Dst, S.scalar(I.Var));
    else
      S.setReg(I.Dst, Interval::top()); // Array elements are untracked.
    return;
  }
  case Opcode::Store: {
    const MemVar &Var = G->program().Vars[I.Var];
    if (Var.NumElements == 1)
      S.setScalar(I.Var, evalOperand(S, I.A));
    return;
  }
  case Opcode::Call:
    // Summarize mode: the interval domain does not track callee effects.
    // The result, every reg global, and every memory scalar the callee
    // could store to become unknown.
    S.setReg(I.Dst, Interval::top());
    for (const RegGlobal &RG : G->program().RegGlobals)
      S.setReg(RG.Reg, Interval::top());
    for (VarId V = 0; V != G->program().Vars.size(); ++V)
      if (G->program().Vars[V].NumElements == 1)
        S.setScalar(V, Interval::top());
    return;
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::Ret:
    return;
  }
}
