//===- FlatCfg.h - Instruction-level control flow graph ---------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's virtual control flow operates at instruction granularity —
/// "the roll-back point is non-deterministic; we assume it may occur at any
/// moment within the maximum speculation depth" — so the analyses run over a
/// flattened CFG with one node per instruction. Speculation depth is then
/// simply a hop count over this graph.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_CFG_FLATCFG_H
#define SPECAI_CFG_FLATCFG_H

#include "ir/Ir.h"

#include <cstdint>
#include <vector>

namespace specai {

/// Node index into a FlatCfg.
using NodeId = uint32_t;
inline constexpr NodeId InvalidNode = static_cast<NodeId>(-1);

/// One node per instruction; edges follow fallthrough, jumps, and both
/// branch directions.
class FlatCfg {
public:
  /// Builds the flat CFG of \p P. The Program must outlive the FlatCfg.
  static FlatCfg build(const Program &P);

  const Program &program() const { return *P; }
  size_t size() const { return Locs.size(); }
  NodeId entry() const { return EntryNode; }

  const Instruction &inst(NodeId N) const {
    return P->Blocks[Locs[N].first].Insts[Locs[N].second];
  }
  BlockId blockOf(NodeId N) const { return Locs[N].first; }
  uint32_t instIndexOf(NodeId N) const { return Locs[N].second; }

  /// First node of a basic block.
  NodeId blockStart(BlockId B) const { return BlockStarts[B]; }
  /// Node for a (block, instruction) pair.
  NodeId nodeAt(BlockId B, uint32_t InstIdx) const {
    return BlockStarts[B] + InstIdx;
  }

  const std::vector<NodeId> &successors(NodeId N) const { return Succs[N]; }
  const std::vector<NodeId> &predecessors(NodeId N) const { return Preds[N]; }
  const std::vector<NodeId> &exits() const { return ExitNodes; }

  /// Reverse post order from the entry; unreachable nodes are absent.
  std::vector<NodeId> reversePostOrder() const;

  /// Nodes reachable from the entry.
  std::vector<bool> reachable() const;

  /// Renders "n: bbX[i] <inst>" per node, for debugging.
  std::string str() const;

private:
  const Program *P = nullptr;
  std::vector<std::pair<BlockId, uint32_t>> Locs;
  std::vector<NodeId> BlockStarts;
  std::vector<std::vector<NodeId>> Succs;
  std::vector<std::vector<NodeId>> Preds;
  std::vector<NodeId> ExitNodes;
  NodeId EntryNode = 0;
};

} // namespace specai

#endif // SPECAI_CFG_FLATCFG_H
