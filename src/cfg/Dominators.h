//===- Dominators.h - Dominator and post-dominator trees --------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and post-dominator computation over the flat CFG using the
/// Cooper-Harvey-Kennedy iterative algorithm. The speculative engine uses
/// post-dominators to place the merge point of post-rollback states (the
/// control-flow join below a speculated branch, paper Figure 7's bb4), and
/// dominators to identify natural-loop back edges for widening.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_CFG_DOMINATORS_H
#define SPECAI_CFG_DOMINATORS_H

#include "cfg/FlatCfg.h"

#include <vector>

namespace specai {

/// Immediate-dominator tree over a FlatCfg.
class DominatorTree {
public:
  /// Computes dominators from the CFG entry.
  static DominatorTree compute(const FlatCfg &G);
  /// Computes post-dominators (dominators of the reversed CFG rooted at a
  /// virtual exit covering all Ret nodes). Nodes with no path to any exit
  /// (infinite loops) get InvalidNode as their immediate post-dominator.
  static DominatorTree computePost(const FlatCfg &G);

  /// Immediate (post-)dominator of \p N; InvalidNode for the root(s) and
  /// unreachable nodes.
  NodeId idom(NodeId N) const { return Idom[N]; }

  /// True if \p A (post-)dominates \p B (reflexive).
  bool dominates(NodeId A, NodeId B) const;

  size_t size() const { return Idom.size(); }

private:
  static DominatorTree computeImpl(const FlatCfg &G, bool Post);

  std::vector<NodeId> Idom;
  /// Depth of each node in the dominator tree (root = 0); -1 unreachable.
  std::vector<int32_t> Depth;
};

} // namespace specai

#endif // SPECAI_CFG_DOMINATORS_H
