//===- LoopInfo.cpp -------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "cfg/LoopInfo.h"

#include <algorithm>
#include <map>

using namespace specai;

LoopInfo LoopInfo::compute(const FlatCfg &G, const DominatorTree &Dom) {
  LoopInfo LI;
  size_t N = G.size();
  LI.Headers.assign(N, false);
  LI.InLoop.assign(N, false);

  std::vector<bool> Reach = G.reachable();

  // Back edge: Node -> Header where Header dominates Node. Collect latch
  // sets per header so loops sharing a header merge.
  std::map<NodeId, std::vector<NodeId>> Latches;
  for (NodeId Node = 0; Node != N; ++Node) {
    if (!Reach[Node])
      continue;
    for (NodeId Succ : G.successors(Node))
      if (Dom.dominates(Succ, Node))
        Latches[Succ].push_back(Node);
  }

  for (auto &[Header, LatchList] : Latches) {
    Loop L;
    L.Header = Header;
    LI.Headers[Header] = true;

    // Standard natural-loop body computation: walk predecessors backward
    // from each latch until the header.
    std::vector<bool> InBody(N, false);
    InBody[Header] = true;
    std::vector<NodeId> Stack;
    for (NodeId Latch : LatchList) {
      if (!InBody[Latch]) {
        InBody[Latch] = true;
        Stack.push_back(Latch);
      }
    }
    while (!Stack.empty()) {
      NodeId Node = Stack.back();
      Stack.pop_back();
      for (NodeId Pred : G.predecessors(Node)) {
        if (!Reach[Pred] || InBody[Pred])
          continue;
        InBody[Pred] = true;
        Stack.push_back(Pred);
      }
    }

    for (NodeId Node = 0; Node != N; ++Node) {
      if (InBody[Node]) {
        L.Body.push_back(Node);
        LI.InLoop[Node] = true;
      }
    }
    LI.Loops.push_back(std::move(L));
  }

  return LI;
}
