//===- FlatCfg.cpp --------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "cfg/FlatCfg.h"

#include <algorithm>
#include <cassert>

using namespace specai;

FlatCfg FlatCfg::build(const Program &P) {
  FlatCfg G;
  G.P = &P;

  G.BlockStarts.resize(P.Blocks.size());
  for (BlockId B = 0; B != P.Blocks.size(); ++B) {
    G.BlockStarts[B] = static_cast<NodeId>(G.Locs.size());
    for (uint32_t I = 0; I != P.Blocks[B].Insts.size(); ++I)
      G.Locs.emplace_back(B, I);
  }

  size_t N = G.Locs.size();
  G.Succs.resize(N);
  G.Preds.resize(N);

  auto AddEdge = [&](NodeId From, NodeId To) {
    G.Succs[From].push_back(To);
    G.Preds[To].push_back(From);
  };

  for (NodeId Node = 0; Node != N; ++Node) {
    const Instruction &I = G.inst(Node);
    switch (I.Op) {
    case Opcode::Br:
      AddEdge(Node, G.blockStart(I.TrueTarget));
      if (I.FalseTarget != I.TrueTarget)
        AddEdge(Node, G.blockStart(I.FalseTarget));
      break;
    case Opcode::Jmp:
      AddEdge(Node, G.blockStart(I.TrueTarget));
      break;
    case Opcode::Ret:
      G.ExitNodes.push_back(Node);
      break;
    default:
      assert(!I.isTerminator() && "unknown terminator");
      AddEdge(Node, Node + 1);
      break;
    }
  }

  G.EntryNode = G.blockStart(Program::EntryBlock);
  return G;
}

std::vector<NodeId> FlatCfg::reversePostOrder() const {
  std::vector<NodeId> Order;
  std::vector<uint8_t> State(size(), 0); // 0=unvisited 1=on-stack 2=done
  // Iterative post-order DFS.
  std::vector<std::pair<NodeId, size_t>> Stack;
  Stack.push_back({EntryNode, 0});
  State[EntryNode] = 1;
  while (!Stack.empty()) {
    auto &[Node, NextSucc] = Stack.back();
    if (NextSucc == Succs[Node].size()) {
      State[Node] = 2;
      Order.push_back(Node);
      Stack.pop_back();
      continue;
    }
    NodeId Succ = Succs[Node][NextSucc++];
    if (State[Succ] == 0) {
      State[Succ] = 1;
      Stack.push_back({Succ, 0});
    }
  }
  std::reverse(Order.begin(), Order.end());
  return Order;
}

std::vector<bool> FlatCfg::reachable() const {
  std::vector<bool> Seen(size(), false);
  std::vector<NodeId> Stack{EntryNode};
  Seen[EntryNode] = true;
  while (!Stack.empty()) {
    NodeId Node = Stack.back();
    Stack.pop_back();
    for (NodeId Succ : Succs[Node]) {
      if (!Seen[Succ]) {
        Seen[Succ] = true;
        Stack.push_back(Succ);
      }
    }
  }
  return Seen;
}

std::string FlatCfg::str() const {
  std::string Out;
  for (NodeId Node = 0; Node != size(); ++Node) {
    Out += std::to_string(Node) + ": bb" + std::to_string(blockOf(Node)) +
           "[" + std::to_string(instIndexOf(Node)) + "] ->";
    for (NodeId Succ : Succs[Node])
      Out += " " + std::to_string(Succ);
    Out += '\n';
  }
  return Out;
}
