//===- Dominators.cpp -----------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "cfg/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace specai;

// The CHK algorithm needs, per direction:
//  - a root set (entry, or all exits for the post variant),
//  - forward edges (succs, or preds for post),
//  - backward edges (preds, or succs for post),
//  - a reverse post order of the traversal direction.
DominatorTree DominatorTree::computeImpl(const FlatCfg &G, bool Post) {
  size_t N = G.size();
  DominatorTree T;
  T.Idom.assign(N, InvalidNode);
  T.Depth.assign(N, -1);
  if (N == 0)
    return T;

  std::vector<NodeId> Roots;
  if (Post) {
    Roots = G.exits();
    if (Roots.empty())
      return T; // No exits: nothing post-dominates anything.
  } else {
    Roots.push_back(G.entry());
  }

  auto Forward = [&](NodeId Node) -> const std::vector<NodeId> & {
    return Post ? G.predecessors(Node) : G.successors(Node);
  };
  auto Backward = [&](NodeId Node) -> const std::vector<NodeId> & {
    return Post ? G.successors(Node) : G.predecessors(Node);
  };

  // Post order over the traversal direction from all roots.
  std::vector<NodeId> Order;
  {
    std::vector<uint8_t> State(N, 0);
    std::vector<std::pair<NodeId, size_t>> Stack;
    for (NodeId Root : Roots) {
      if (State[Root] != 0)
        continue;
      Stack.push_back({Root, 0});
      State[Root] = 1;
      while (!Stack.empty()) {
        auto &[Node, NextIdx] = Stack.back();
        const auto &Next = Forward(Node);
        if (NextIdx == Next.size()) {
          State[Node] = 2;
          Order.push_back(Node);
          Stack.pop_back();
          continue;
        }
        NodeId Succ = Next[NextIdx++];
        if (State[Succ] == 0) {
          State[Succ] = 1;
          Stack.push_back({Succ, 0});
        }
      }
    }
  }
  std::vector<NodeId> Rpo(Order.rbegin(), Order.rend());

  std::vector<int32_t> RpoNumber(N, -1);
  for (size_t I = 0; I != Rpo.size(); ++I)
    RpoNumber[Rpo[I]] = static_cast<int32_t>(I);

  // Multiple roots (post-dominators with several Ret nodes) are handled by
  // making each root its own idom; intersect() stops at roots.
  std::vector<bool> IsRoot(N, false);
  for (NodeId Root : Roots) {
    IsRoot[Root] = true;
    T.Idom[Root] = Root; // Temporarily self, cleared at the end.
  }

  auto Intersect = [&](NodeId A, NodeId B) {
    while (A != B) {
      while (RpoNumber[A] > RpoNumber[B]) {
        if (T.Idom[A] == A)
          return InvalidNode; // Hit a root from one side.
        A = T.Idom[A];
      }
      while (RpoNumber[B] > RpoNumber[A]) {
        if (T.Idom[B] == B)
          return InvalidNode;
        B = T.Idom[B];
      }
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (NodeId Node : Rpo) {
      if (IsRoot[Node])
        continue;
      NodeId NewIdom = InvalidNode;
      for (NodeId Pred : Backward(Node)) {
        if (T.Idom[Pred] == InvalidNode && !IsRoot[Pred])
          continue; // Unprocessed or unreachable.
        if (RpoNumber[Pred] < 0)
          continue;
        if (NewIdom == InvalidNode) {
          NewIdom = Pred;
          continue;
        }
        NodeId Met = Intersect(Pred, NewIdom);
        // When two candidates only meet "above" different roots, there is
        // no common (post-)dominator below the virtual root; record the
        // virtual root by keeping InvalidNode.
        NewIdom = Met;
        if (NewIdom == InvalidNode)
          break;
      }
      if (NewIdom != InvalidNode && T.Idom[Node] != NewIdom) {
        T.Idom[Node] = NewIdom;
        Changed = true;
      }
    }
  }

  // Roots point at InvalidNode (the virtual super-root).
  for (NodeId Root : Roots)
    T.Idom[Root] = InvalidNode;

  // Depths for dominance queries.
  // Compute iteratively in RPO: a node's idom always precedes it.
  for (NodeId Node : Rpo) {
    if (IsRoot[Node]) {
      T.Depth[Node] = 0;
      continue;
    }
    NodeId Up = T.Idom[Node];
    if (Up != InvalidNode && T.Depth[Up] >= 0)
      T.Depth[Node] = T.Depth[Up] + 1;
  }

  return T;
}

DominatorTree DominatorTree::compute(const FlatCfg &G) {
  return computeImpl(G, /*Post=*/false);
}

DominatorTree DominatorTree::computePost(const FlatCfg &G) {
  return computeImpl(G, /*Post=*/true);
}

bool DominatorTree::dominates(NodeId A, NodeId B) const {
  assert(A < Idom.size() && B < Idom.size());
  if (Depth[A] < 0 || Depth[B] < 0)
    return false;
  while (Depth[B] > Depth[A]) {
    B = Idom[B];
    if (B == InvalidNode)
      return false;
  }
  return A == B;
}
