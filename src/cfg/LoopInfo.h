//===- LoopInfo.h - Natural loop detection ----------------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection over the flat CFG. The engines widen at loop
/// headers (paper §6.3: "loops with fixed iteration number will be fully
/// unrolled; only unresolved loops will be widened" — unrolling happens in
/// lowering, so any loop surviving to this point is "unresolved").
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_CFG_LOOPINFO_H
#define SPECAI_CFG_LOOPINFO_H

#include "cfg/Dominators.h"
#include "cfg/FlatCfg.h"

#include <vector>

namespace specai {

/// One natural loop: header plus body nodes (header included).
struct Loop {
  NodeId Header = InvalidNode;
  std::vector<NodeId> Body;
};

/// Loops of a flat CFG; loops sharing a header are merged.
class LoopInfo {
public:
  static LoopInfo compute(const FlatCfg &G, const DominatorTree &Dom);

  const std::vector<Loop> &loops() const { return Loops; }

  /// True if \p N is the header of some natural loop.
  bool isHeader(NodeId N) const { return N < Headers.size() && Headers[N]; }

  /// True if \p N belongs to any loop.
  bool inAnyLoop(NodeId N) const { return N < InLoop.size() && InLoop[N]; }

  size_t loopCount() const { return Loops.size(); }

private:
  std::vector<Loop> Loops;
  std::vector<bool> Headers;
  std::vector<bool> InLoop;
};

} // namespace specai

#endif // SPECAI_CFG_LOOPINFO_H
