//===- Workloads.cpp ------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// Kernel sizing conventions:
///  - the side-channel suite targets the paper's 512-line (32 KB) cache;
///  - the execution-time suite targets a 64-line (4 KB) cache, scaled from
///    the paper's full applications down to distilled kernels
///    (DESIGN.md §1);
///  - `secret` marks key material, plain scalars without initializers are
///    program inputs, preload loops stride by the 64-byte line size.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace specai;

std::string specai::fig2Source() {
  // Paper Figure 2, verbatim modulo mini-C syntax: 510 lines of
  // placeholder data, two one-line branch targets, a one-line condition
  // scalar, and a secret-indexed access into the placeholder array.
  return R"MC(
char ph[32640];            // 64 * 510 bytes = 510 cache lines
char l1[64];
char l2[64];
char p;                    // input: branch selector (1 line)
secret reg char k;         // the secret index (register, cache invisible)

int main() {
  reg int t;
  for (reg int i = 0; i < 32640; i += 64)
    t = ph[i];             // line 3: preload ph
  if (p == 0) {
    t = l1[0];             // line 5
  } else {
    t = l2[0];             // line 7
  }
  t = ph[k];               // line 8: hit iff all of ph is still cached
  return t;
}
)MC";
}

std::string specai::fig7Source() {
  // Paper Figure 7: blocks a,b,c loaded, a branch loads d or e, then a is
  // re-referenced at the join (bb4). With a 4-line cache, non-speculative
  // analysis proves the final access hits; under speculation both d and e
  // are loaded and a is evicted.
  return R"MC(
char a[64];
char b[64];
char c[64];
char d[64];
char e[64];

int main() {
  reg int t;
  reg int cond;
  t = a[0];
  t = t + b[0];
  cond = c[0];             // branch condition comes from memory
  if (cond != 0) {
    t = t + d[0];
  } else {
    t = t + e[0];
  }
  t = t + a[0];            // bb4: is a still cached?
  return t;
}
)MC";
}

std::string specai::quantlSource() {
  // Paper Figure 8: the quantl routine of the G.722 encoder (Mälardalen
  // adpcm), unchanged except for mini-C spelling. Analyze with entry
  // function "quantl"; el and detl are inputs.
  return R"MC(
/* table is 31 entries to make quantl look-up easier,
   last entry is for mil=30 when wd is max */
int quant26bt_pos[31] = { 61,60,59,58,57,56,55,54,
  53,52,51,50,49,48,47,46,45,44,43,42,41,40,39,
  38,37,36,35,34,33,32,32 };
int quant26bt_neg[31] = { 63,62,31,30,29,28,27,26,
  25,24,23,22,21,20,19,18,17,16,15,14,13,12,11,10,
  9,8,7,6,5,4,4 };
/* decision levels - pre-multiplied by 8 */
int decis_levl[30] = { 280,576,880,1200,1520,1864,
  2208,2584,2960,3376,3784,4240,4696,5200,5712,
  6288,6864,7520,8184,8968,9752,10712,11664,12896,
  14120,15840,17560,20456,23352,32767 };

long my_abs(long x) {
  if (x < 0) { return 0 - x; }
  return x;
}

int quantl(int el, int detl) {
  int ril, mil;
  long wd, decis;
  /* abs of difference signal */
  wd = my_abs(el);
  /* mil based on decision levels and detl gain */
  for (mil = 0; mil < 30; mil++) {
    decis = (decis_levl[mil] * (long)detl) >> 15;
    if (wd <= decis) break;
  }
  /* if mil=30, wd is less than all decision levels */
  if (el >= 0) { ril = quant26bt_pos[mil]; }
  else { ril = quant26bt_neg[mil]; }
  return ril;
}
)MC";
}

std::string specai::fig11Source() {
  // Paper Figure 11 / Appendix C: `a` is loaded, then a loop touches b or
  // c each iteration. With a 4-line cache the original analysis eventually
  // evicts a; the shadow-variable analysis keeps it at age 3.
  return R"MC(
char a[64];
char b[64];
char c[64];

int main(reg int n, reg int sel) {
  reg int t;
  reg int i;
  t = a[0];
  i = 0;
  while (i < n) {
    if (((sel >> i) & 1) != 0) {
      t = t + b[0];
    } else {
      t = t + c[0];
    }
    i = i + 1;
  }
  t = t + a[0];            // must-hit only with shadow variables
  return t;
}
)MC";
}

//===----------------------------------------------------------------------===//
// Table 3: execution time estimation kernels (64-line / 4 KB cache).
//===----------------------------------------------------------------------===//

const std::vector<Workload> &specai::wcetWorkloads() {
  // Each kernel follows the Figure-2 budget discipline on a 64-line cache:
  // an "anchor" table is preloaded (~32 lines), a memory-conditioned
  // branch selects between two ~16-line working tables, and the anchor is
  // re-read at the end. One branch side alone fits (the non-speculative
  // analysis proves the re-reads hit); speculatively executing the other
  // side overflows the cache and evicts the anchor's oldest lines — the
  // paper's extra misses. Data-dependent scans run before the preload so
  // their fixpoint aging cannot blur the anchor.
  static const std::vector<Workload> Workloads = {
      {"adpcm", "motor control (ADPCM codec: quantizer scan + step adapt)",
       R"MC(
int decis_levl[30] = { 280,576,880,1200,1520,1864,2208,2584,2960,3376,
  3784,4240,4696,5200,5712,6288,6864,7520,8184,8968,9752,10712,11664,
  12896,14120,15840,17560,20456,23352,32767 };
char hist[2048];           // 32 lines: sample history (the anchor)
char adapt_up[1024];       // 16 lines
char adapt_dn[1024];       // 16 lines
int el; int detl;          // inputs
int mil;

int main() {
  reg int t; reg int i;
  t = 0;
  // Quantizer scan (data dependent, stays a loop; Table 1 style).
  for (mil = 0; mil < 30; mil++) {
    if (decis_levl[mil] > el) break;
  }
  for (i = 0; i < 2048; i += 64) t = t + hist[i];
  // Step-size adaptation direction depends on the quantized code.
  if (detl > 16) {
    for (reg int j = 0; j < 1024; j += 64) t = t + adapt_up[j];
  } else {
    for (reg int j = 0; j < 1024; j += 64) t = t + adapt_dn[j];
  }
  // Reconstruction re-reads the history window.
  t = t + hist[0];
  t = t + hist[128];
  t = t + hist[256];
  t = t + hist[384];
  t = t + hist[512];
  t = t + hist[640];
  return t + mil;
}
)MC"},
      {"susan", "image process algorithm (brightness LUT + threshold)",
       R"MC(
char bright_lut[2048];     // 32 lines: brightness response (the anchor)
char smooth_row[1024];     // 16 lines
char edge_row[1024];       // 16 lines
int thresh;                // input
int img_kind;              // input
int usan;

int main() {
  reg int t; reg int i;
  t = 0;
  // USAN area scan with a data-dependent early exit (before the preload).
  for (usan = 0; usan < 8; usan++) {
    if (usan * 37 > img_kind) break;
  }
  for (i = 0; i < 2048; i += 64) t = t + bright_lut[i];
  // Smoothing vs edge path decided by the threshold from memory.
  if (t > thresh) {
    for (reg int j = 0; j < 1024; j += 64) t = t + smooth_row[j];
  } else {
    for (reg int j = 0; j < 1024; j += 64) t = t + edge_row[j];
  }
  // Response lookups against the LUT.
  t = t + bright_lut[0];
  t = t + bright_lut[64];
  t = t + bright_lut[192];
  t = t + bright_lut[320];
  t = t + bright_lut[448];
  return t + usan;
}
)MC"},
      {"layer3", "mp3 audio lib (subband windows, block-type switch)",
       R"MC(
char synth_win[2048];      // 32 lines: synthesis window (the anchor)
char long_blk[1024];       // 16 lines
char short_blk[1024];      // 16 lines
int block_type;            // input: from the bitstream
int gr;

int main() {
  reg int t; reg int i;
  t = 0;
  // Granule scan (data dependent).
  for (gr = 0; gr < 12; gr++) {
    if (gr * 19 > block_type) break;
  }
  for (i = 0; i < 2048; i += 64) t = t + synth_win[i];
  // Window selection is bitstream dependent, so it speculates.
  if (block_type == 2) {
    for (reg int j = 0; j < 1024; j += 64) t = t + short_blk[j];
  } else {
    for (reg int j = 0; j < 1024; j += 64) t = t + long_blk[j];
  }
  // Overlap-add re-reads the synthesis window.
  t = t + synth_win[0];
  t = t + synth_win[64];
  t = t + synth_win[128];
  t = t + synth_win[256];
  t = t + synth_win[512];
  return t + gr;
}
)MC"},
      {"jcmarker", "jpeg compose (marker emit, huffman spec tables)",
       R"MC(
char qtable[2048];         // 32 lines: quant tables (the anchor)
char bits_dc[1024];        // 16 lines
char bits_ac[1024];        // 16 lines
int marker;                // input

int main() {
  reg int t; reg int i;
  t = 0;
  for (i = 0; i < 2048; i += 64) t = t + qtable[i];
  if (marker == 196) {       // 0xC4: DHT for DC
    for (reg int j = 0; j < 1024; j += 64) t = t + bits_dc[j];
  } else {
    for (reg int j = 0; j < 1024; j += 64) t = t + bits_ac[j];
  }
  // Emitting DQT re-reads the quant tables.
  t = t + qtable[0];
  t = t + qtable[64];
  t = t + qtable[128];
  t = t + qtable[192];
  return t;
}
)MC"},
      {"jdmarker", "jpeg decompose (marker dispatch chain)",
       R"MC(
char frame_tab[1920];      // 30 lines: frame state (the anchor)
char sof_tab[640];         // 10 lines
char sos_tab[640];         // 10 lines
char dqt_tab[640];         // 10 lines
char dri_tab[640];         // 10 lines
int m0; int m1;            // inputs: next markers in the stream

int main() {
  reg int t; reg int i;
  t = 0;
  for (i = 0; i < 1920; i += 64) t = t + frame_tab[i];
  // Marker dispatch: a chain of memory-conditioned branches, each side
  // touching its own parse table (many speculation sites).
  if (m0 == 192) {
    for (reg int j = 0; j < 640; j += 64) t = t + sof_tab[j];
  } else {
    for (reg int j = 0; j < 640; j += 64) t = t + sos_tab[j];
  }
  if (m1 == 219) {
    for (reg int j = 0; j < 640; j += 64) t = t + dqt_tab[j];
  } else {
    for (reg int j = 0; j < 640; j += 64) t = t + dri_tab[j];
  }
  // Decoding continues against the frame state.
  t = t + frame_tab[0];
  t = t + frame_tab[64];
  t = t + frame_tab[128];
  t = t + frame_tab[192];
  t = t + frame_tab[256];
  t = t + frame_tab[320];
  return t;
}
)MC"},
      {"jcphuff", "jpeg Huffman entropy encoding routines",
       R"MC(
char code_tab[1536];       // 24 lines: derived code table (the anchor)
char count_hi[512];        // 8 lines
char count_lo[512];        // 8 lines
int nsym;                  // input
int s;

int main() {
  reg int t; reg int i;
  t = 0;
  // Bit-length scan (data dependent).
  for (s = 0; s < 16; s++) {
    if (s * 11 > nsym) break;
  }
  for (i = 0; i < 1536; i += 64) t = t + code_tab[i];
  if (nsym > 64) {
    for (reg int j = 0; j < 512; j += 64) t = t + count_hi[j];
  } else {
    for (reg int j = 0; j < 512; j += 64) t = t + count_lo[j];
  }
  t = t + code_tab[0];
  t = t + code_tab[64];
  return t + s;
}
)MC"},
      {"gtk", "GTK plotting routines (large framebuffer rows)",
       R"MC(
char framebuf[2048];       // 32 lines: framebuffer row cache (the anchor)
char pattern_a[1024];      // 16 lines
char pattern_b[1024];      // 16 lines
int x0; int x1;            // inputs: segment endpoints

int main() {
  reg int t; reg int i;
  t = 0;
  for (i = 0; i < 2048; i += 64) t = t + framebuf[i];
  // Fill pattern depends on clipping of the (memory) endpoints.
  if (x0 < x1) {
    for (reg int j = 0; j < 1024; j += 64) t = t + pattern_a[j];
  } else {
    for (reg int j = 0; j < 1024; j += 64) t = t + pattern_b[j];
  }
  // Blit touches the row cache again.
  t = t + framebuf[0];
  t = t + framebuf[64];
  t = t + framebuf[128];
  t = t + framebuf[192];
  t = t + framebuf[320];
  t = t + framebuf[448];
  t = t + framebuf[576];
  return t;
}
)MC"},
      {"g72", "routines for G.721 and G.723 conversions",
       R"MC(
int qtab_721[16] = { -124,80,178,246,300,349,400,440,
  480,520,560,600,640,680,720,760 };
char state_buf[1792];      // 28 lines: predictor state (the anchor)
char law_a[1024];          // 16 lines
char law_u[1024];          // 16 lines
int law;                   // input
int sample;                // input
int q;

int main() {
  reg int t; reg int i;
  t = 0;
  // Quantizer table scan (data dependent).
  for (q = 0; q < 16; q++) {
    if (qtab_721[q] > sample) break;
  }
  for (i = 0; i < 1792; i += 64) t = t + state_buf[i];
  if (law == 0) {
    for (reg int j = 0; j < 1024; j += 64) t = t + law_a[j];
  } else {
    for (reg int j = 0; j < 1024; j += 64) t = t + law_u[j];
  }
  // Predictor update re-reads its state.
  t = t + state_buf[0];
  t = t + state_buf[64];
  t = t + state_buf[128];
  return t + q;
}
)MC"},
      {"vga", "Driver for Borland Graphics Interface",
       R"MC(
char mode_regs[192];       // 3 lines
int mode;                  // input

int main() {
  reg int t;
  t = mode_regs[0];
  if (mode == 3) { t = t + mode_regs[64]; }
  else { t = t + mode_regs[128]; }
  if (mode > 16) { t = t + mode_regs[0]; }
  return t;
}
)MC"},
      {"stc", "Epson Stylus-Color printer driver (dither + color map)",
       R"MC(
char dither_mat[1920];     // 30 lines: dither matrix (the anchor)
char cmy_lut[1024];        // 16 lines
char kgen_lut[1024];       // 16 lines
int ink;                   // input
int paper;                 // input
int p;

int main() {
  reg int t; reg int i;
  t = 0;
  // Paper-type scan (data dependent).
  for (p = 0; p < 8; p++) {
    if (p * 29 > paper) break;
  }
  for (i = 0; i < 1920; i += 64) t = t + dither_mat[i];
  if (ink == 4) {
    for (reg int j = 0; j < 1024; j += 64) t = t + kgen_lut[j];
  } else {
    for (reg int j = 0; j < 1024; j += 64) t = t + cmy_lut[j];
  }
  // Halftoning walks the dither matrix again.
  t = t + dither_mat[0];
  t = t + dither_mat[64];
  t = t + dither_mat[128];
  t = t + dither_mat[256];
  t = t + dither_mat[384];
  return t + p;
}
)MC"},
  };
  return Workloads;
}

//===----------------------------------------------------------------------===//
// Table 4: side channel detection kernels (512-line / 32 KB cache).
//===----------------------------------------------------------------------===//

const std::vector<CryptoWorkload> &specai::cryptoWorkloads() {
  static const std::vector<CryptoWorkload> Workloads = {
      // --- Kernels the paper reports as LEAKY under speculation. ---
      {"hash", "hash function (hpn-ssh)",
       R"MC(
char htab[1024];           // 16 lines: secret-indexed mixing table
char pad_lo[1024];         // 16 lines
char pad_hi[1024];         // 16 lines
secret char key[64];
char msg_len;              // attacker-visible input

int hash_run() {
  reg int t; reg int i; reg int acc;
  acc = 0;
  // Padding path depends on the (memory) message length; under
  // misprediction the other pad block is pulled in too.
  if (msg_len > 16) {
    for (i = 0; i < 1024; i += 64) acc = acc + pad_hi[i];
  } else {
    for (i = 0; i < 1024; i += 64) acc = acc + pad_lo[i];
  }
  t = key[0];
  return htab[(acc + t) & 1023];   // secret-indexed lookup
}
)MC",
       "t = t + hash_run();",
       {{"htab", 1024}}},

      {"encoder", "hex encode a string (LibTomCrypt)",
       R"MC(
char hexmap[512];          // 8 lines: secret-indexed nibble map
char buf_even[512];        // 8 lines
char buf_odd[512];         // 8 lines
secret char data[64];
char in_len;               // input

int encoder_run() {
  reg int t; reg int i; reg int acc;
  acc = 0;
  if ((in_len & 1) == 0) {
    for (i = 0; i < 512; i += 64) acc = acc + buf_even[i];
  } else {
    for (i = 0; i < 512; i += 64) acc = acc + buf_odd[i];
  }
  t = data[0];
  return hexmap[(acc ^ t) & 511];
}
)MC",
       "t = t + encoder_run();",
       {{"hexmap", 512}}},

      {"chacha20", "chacha20poly1305 cipher (LibTomCrypt)",
       R"MC(
char poly_tab[1024];       // 16 lines: secret-indexed reduction table
char block_full[1024];     // 16 lines
char block_part[1024];     // 16 lines
secret char key[256];
char last_len;             // input: final partial-block length

int chacha20_run() {
  reg int t; reg int i; reg int x;
  x = 0;
  // ARX rounds over the secret key (constant trip, fully unrolled).
  for (i = 0; i < 256; i += 64) {
    t = key[i];
    x = (x + t) ^ ((x << 7) | (x >> 25));
  }
  // Final block handling depends on the message tail length.
  if (last_len == 64) {
    for (i = 0; i < 1024; i += 64) x = x + block_full[i];
  } else {
    for (i = 0; i < 1024; i += 64) x = x + block_part[i];
  }
  return poly_tab[(x + key[0]) & 1023];
}
)MC",
       "t = t + chacha20_run();",
       {{"poly_tab", 1024}}},

      {"ocb", "OCB implementation (LibTomCrypt)",
       R"MC(
char ltab[2048];           // 32 lines: secret-indexed L_i offsets
char off_main[1024];       // 16 lines
char off_tail[1024];       // 16 lines
secret char nonce[64];
char trailing;             // input: ntz handling

int ocb_run() {
  reg int t; reg int i; reg int acc;
  acc = 0;
  if (trailing != 0) {
    for (i = 0; i < 1024; i += 64) acc = acc + off_tail[i];
  } else {
    for (i = 0; i < 1024; i += 64) acc = acc + off_main[i];
  }
  t = nonce[0];
  return ltab[(acc + t) & 2047];
}
)MC",
       "t = t + ocb_run();",
       {{"ltab", 2048}}},

      {"des", "des cipher (openssl); leaks even with an empty client buffer",
       R"MC(
char sp_box[8192];         // 128 lines: secret-indexed SP boxes
char work[22528];          // 352 lines: internal user-sized work buffer
char sched_a[1024];        // 16 lines
char sched_b[1024];        // 16 lines
secret char key[64];
char decrypt;              // input: direction flag

int des_run() {
  reg int t; reg int i; reg int acc;
  acc = 0;
  // The internal work buffer is user controlled; it alone nearly fills
  // the cache (this is why des leaks at client buffer size 0).
  for (i = 0; i < 22528; i += 64) acc = acc + work[i];
  if (decrypt != 0) {
    for (i = 0; i < 1024; i += 64) acc = acc + sched_b[i];
  } else {
    for (i = 0; i < 1024; i += 64) acc = acc + sched_a[i];
  }
  t = key[0];
  return sp_box[(acc ^ t) & 8191];
}
)MC",
       "t = t + des_run();",
       {{"sp_box", 8192}}},

      // --- Kernels the paper reports as LEAK-FREE (both analyses). ---
      {"aes", "AES implementation (LibTomCrypt)",
       R"MC(
char sbox[256];            // 4 lines: the S-box
secret char key[176];      // expanded round keys
char pt[64];

int aes_run() {
  reg int t; reg int s; reg int r;
  s = pt[0];
  // Ten constant rounds, fully unrolled: no speculation sites. The
  // secret-indexed S-box accesses stay hits because the whole S-box
  // remains resident.
  for (r = 0; r < 10; r += 1) {
    t = key[r * 16];
    s = sbox[(s ^ t) & 255] ^ (s << 1);
  }
  return s & 255;
}
)MC",
       "t = t + aes_run();",
       {{"sbox", 256}, {"pt", 64}}},

      {"str2key", "key prepare for des (openssl)",
       R"MC(
char odd_parity[64];       // 1 line: single-line table is always uniform
secret char passwd[128];

int str2key_run() {
  reg int t; reg int i; reg int k;
  k = 0;
  for (i = 0; i < 128; i += 1) {
    t = passwd[i];
    k = (k << 1) ^ odd_parity[(t ^ k) & 63];
  }
  return k & 255;
}
)MC",
       "t = t + str2key_run();",
       {{"odd_parity", 64}, {"passwd", 128}}},

      {"seed", "seed cipher (linux-tegra)",
       R"MC(
char ss0[256];             // 4 lines
char ss1[256];             // 4 lines
secret char seed_key[128];

int seed_run() {
  reg int t; reg int x; reg int r;
  x = 0;
  for (r = 0; r < 16; r += 1) {
    t = seed_key[r * 8];
    x = x ^ ss0[(x + t) & 255];
    x = x + ss1[(x ^ t) & 255];
  }
  return x & 255;
}
)MC",
       "t = t + seed_run();",
       {{"ss0", 256}, {"ss1", 256}}},

      {"camellia", "camellia cipher (linux-tegra)",
       R"MC(
char sp1[256];             // 4 lines
char sp2[256];             // 4 lines
char sp3[256];             // 4 lines
secret char cam_key[192];

int camellia_run() {
  reg int t; reg int x; reg int r;
  x = 0;
  for (r = 0; r < 18; r += 1) {
    t = cam_key[r * 8];
    x = x ^ sp1[(x + t) & 255];
    x = x + sp2[(x ^ t) & 255];
    x = x ^ sp3[(x + (t << 1)) & 255];
  }
  return x & 255;
}
)MC",
       "t = t + camellia_run();",
       {{"sp1", 256}, {"sp2", 256}, {"sp3", 256}}},

      {"salsa", "Salsa20 stream cipher (linux-tegra); pure ARX, no tables",
       R"MC(
secret char salsa_key[256];

int salsa_run() {
  reg int t; reg int x; reg int r;
  x = 0;
  for (r = 0; r < 256; r += 64) {
    t = salsa_key[r];
    x = x + ((t ^ x) << 7);
    x = x ^ ((x + t) >> 9);
    x = x + ((t ^ x) << 13);
  }
  return x & 255;
}
)MC",
       "t = t + salsa_run();",
       {{"salsa_key", 256}}},
  };
  return Workloads;
}

std::string specai::makeClientProgram(const CryptoWorkload &W,
                                      uint64_t BufBytes) {
  std::string Out = W.KernelSource;
  Out += "\n";
  if (BufBytes > 0)
    Out += "char inBuf[" + std::to_string(BufBytes) + "];\n";
  Out += "int main() {\n";
  Out += "  reg int t;\n";
  Out += "  reg int i;\n";
  Out += "  t = 0;\n";
  // Preload the kernel's tables (Figure 10 lines 9-10); secret-indexed
  // tables are listed first, making them the oldest lines.
  for (const auto &[Name, Elems] : W.Preload) {
    Out += "  for (i = 0; i < " + std::to_string(Elems) +
           "; i += 64) t = t + " + Name + "[i];\n";
  }
  if (BufBytes > 0) {
    // Attacker-sized buffer read (Figure 10 lines 11-12).
    Out += "  for (i = 0; i < " + std::to_string(BufBytes) +
           "; i += 64) t = t + inBuf[i];\n";
  }
  Out += "  " + W.KernelCall + "\n";
  Out += "  return t;\n";
  Out += "}\n";
  return Out;
}
