//===- Workloads.h - Benchmark programs from the paper ----------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mini-C workloads reproducing the paper's benchmark suites:
///
///  - the inline examples: Figure 2 (motivating example), Figure 7
///    (just-in-time merging), Figure 8 (`quantl`, Tables 1-2), Figure 10
///    (the leaking client), Figure 11 (shadow variables);
///  - Table 3's ten execution-time-estimation benchmarks (Mälardalen /
///    MiBench / mediaBench names), each distilled to a kernel with the
///    structural features the paper's narrative attributes to it
///    (table-driven loops, data-dependent scans, memory-conditioned
///    branches);
///  - Table 4's ten side-channel benchmarks (hpn-ssh / LibTomCrypt /
///    openssl / linux-tegra names) as crypto kernels with `secret` inputs,
///    plus the Figure-10-style client generator that preloads the tables,
///    touches an attacker-sized buffer, and invokes the kernel.
///
/// The substitution rationale (real suites -> distilled kernels) is in
/// DESIGN.md §1: the analysis outcome depends on the access structure, not
/// on full application logic.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_WORKLOADS_WORKLOADS_H
#define SPECAI_WORKLOADS_WORKLOADS_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace specai {

/// A self-contained analysis workload (has a `main`).
struct Workload {
  std::string Name;
  std::string Description;
  std::string Source;
};

/// A crypto kernel to be wrapped by the Figure-10 client.
struct CryptoWorkload {
  std::string Name;
  std::string Description;
  /// Tables, secret globals, and the kernel function (no `main`).
  std::string KernelSource;
  /// Statement invoking the kernel from the client, e.g. "t = des_run();".
  std::string KernelCall;
  /// Char arrays the client preloads, with their element counts; listed
  /// secret-indexed tables first (they are preloaded first and are thus
  /// the oldest, i.e. the first evicted under extra pressure).
  std::vector<std::pair<std::string, unsigned>> Preload;
};

/// Table 3 benchmarks (execution time estimation).
const std::vector<Workload> &wcetWorkloads();

/// Table 4 benchmarks (side channel detection).
const std::vector<CryptoWorkload> &cryptoWorkloads();

/// Builds the Figure-10 client: preloads the kernel's tables, reads a
/// \p BufBytes attacker-controlled buffer (0 omits the buffer), then calls
/// the kernel.
std::string makeClientProgram(const CryptoWorkload &W, uint64_t BufBytes);

/// Figure 2: the motivating example (512-line cache; 512 misses + 1 hit
/// non-speculatively, 513 observable misses speculatively).
std::string fig2Source();

/// Figure 7: the 5-block just-in-time merging example (4-line cache).
std::string fig7Source();

/// Figure 8: the quantl DSP routine (Tables 1 and 2).
std::string quantlSource();

/// Figure 11: the loop whose block `a` survives only with shadow
/// variables (4-line cache).
std::string fig11Source();

} // namespace specai

#endif // SPECAI_WORKLOADS_WORKLOADS_H
