//===- MemoryModel.h - Variables to cache blocks ----------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lays program variables out in a line-aligned address space and maps
/// (variable, element) accesses to cache blocks. Matching the paper's §2
/// setup, every variable starts on its own cache line ("ph, l1, l2 and p
/// are mapped to different cache lines").
///
/// Accesses whose element index is statically unknown are modeled with
/// *symbolic instance blocks*: the k-th unknown access at a site picks the
/// k-th fresh instance, the paper's `decis_lev[1*]`, `decis_lev[2*]`
/// notation (Table 1). Instances are capped at the number of lines the
/// array spans, since the array can never occupy more lines than that.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_MEMORY_MEMORYMODEL_H
#define SPECAI_MEMORY_MEMORYMODEL_H

#include "cache/CacheSim.h"
#include "ir/Ir.h"

#include <string>
#include <vector>

namespace specai {

/// Address layout and block naming for one Program under one cache
/// geometry. Both must outlive the model.
class MemoryModel {
public:
  MemoryModel(const Program &P, const CacheConfig &Config);

  const CacheConfig &config() const { return Config; }
  const Program &program() const { return *P; }

  /// Line-aligned base byte address of a variable.
  uint64_t baseAddrOf(VarId Var) const { return Bases[Var]; }

  /// Number of cache lines the variable spans.
  uint64_t numBlocksOf(VarId Var) const { return BlockCounts[Var]; }

  /// Concrete block holding element \p Element of \p Var.
  BlockAddr blockOf(VarId Var, uint64_t Element) const;

  /// First concrete block of \p Var (its blocks are contiguous).
  BlockAddr firstBlockOf(VarId Var) const {
    return Bases[Var] / Config.LineSize;
  }

  /// Total number of concrete blocks across all variables.
  uint64_t numConcreteBlocks() const { return TotalBlocks; }

  /// The k-th symbolic instance block of array \p Var; \p K saturates at
  /// numBlocksOf(Var) - 1.
  BlockAddr symbolicBlock(VarId Var, uint64_t K) const;

  bool isSymbolic(BlockAddr Block) const { return Block >= SymbolicBase; }

  /// Variable owning a block (concrete or symbolic); InvalidVar for
  /// addresses outside the layout.
  VarId varOfBlock(BlockAddr Block) const;

  /// Cache set of a block. Symbolic instances adopt the set of the
  /// corresponding concrete line of their array, so set pressure lands
  /// where the real access could.
  uint32_t setOf(BlockAddr Block) const;

  /// Human-readable block name: "p", "ph[3]", "decis_levl[2*]".
  std::string blockName(BlockAddr Block) const;

  /// All concrete blocks of \p Var.
  std::vector<BlockAddr> blocksOf(VarId Var) const;

  /// Cache sets that \p Var's lines may map to (deduplicated).
  std::vector<uint32_t> setsOf(VarId Var) const;

private:
  const Program *P;
  CacheConfig Config;
  std::vector<uint64_t> Bases;
  std::vector<uint64_t> BlockCounts;
  uint64_t TotalBlocks = 0;
  /// Symbolic ids start here (above any concrete block).
  BlockAddr SymbolicBase = 0;
  /// Per variable: first symbolic id.
  std::vector<uint64_t> SymbolicFirst;
};

} // namespace specai

#endif // SPECAI_MEMORY_MEMORYMODEL_H
