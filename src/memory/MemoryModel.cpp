//===- MemoryModel.cpp ----------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "memory/MemoryModel.h"

#include <algorithm>
#include <cassert>

using namespace specai;

MemoryModel::MemoryModel(const Program &P, const CacheConfig &Config)
    : P(&P), Config(Config) {
  assert(Config.isValid() && "invalid cache geometry");
  Bases.resize(P.Vars.size());
  BlockCounts.resize(P.Vars.size());
  uint64_t NextAddr = 0;
  for (VarId V = 0; V != P.Vars.size(); ++V) {
    const MemVar &Var = P.Vars[V];
    Bases[V] = NextAddr;
    uint64_t Bytes = Var.sizeInBytes();
    uint64_t Lines = (Bytes + Config.LineSize - 1) / Config.LineSize;
    if (Lines == 0)
      Lines = 1;
    BlockCounts[V] = Lines;
    NextAddr += Lines * Config.LineSize; // Line-aligned placement.
  }
  TotalBlocks = NextAddr / Config.LineSize;
  SymbolicBase = TotalBlocks + 1024; // Gap guards against accidental overlap.

  SymbolicFirst.resize(P.Vars.size());
  uint64_t NextSym = SymbolicBase;
  for (VarId V = 0; V != P.Vars.size(); ++V) {
    SymbolicFirst[V] = NextSym;
    NextSym += BlockCounts[V];
  }
}

BlockAddr MemoryModel::blockOf(VarId Var, uint64_t Element) const {
  assert(Var < Bases.size() && "variable out of range");
  const MemVar &V = P->Vars[Var];
  uint64_t Elem = V.NumElements == 0 ? 0 : Element % V.NumElements;
  uint64_t Addr = Bases[Var] + Elem * V.ElemSize;
  return Addr / Config.LineSize;
}

BlockAddr MemoryModel::symbolicBlock(VarId Var, uint64_t K) const {
  assert(Var < SymbolicFirst.size() && "variable out of range");
  uint64_t Cap = BlockCounts[Var] == 0 ? 1 : BlockCounts[Var];
  if (K >= Cap)
    K = Cap - 1;
  return SymbolicFirst[Var] + K;
}

VarId MemoryModel::varOfBlock(BlockAddr Block) const {
  if (isSymbolic(Block)) {
    for (VarId V = 0; V != SymbolicFirst.size(); ++V) {
      uint64_t First = SymbolicFirst[V];
      if (Block >= First && Block < First + BlockCounts[V])
        return V;
    }
    return InvalidVar;
  }
  uint64_t Addr = Block * Config.LineSize;
  for (VarId V = 0; V != Bases.size(); ++V) {
    uint64_t End = Bases[V] + BlockCounts[V] * Config.LineSize;
    if (Addr >= Bases[V] && Addr < End)
      return V;
  }
  return InvalidVar;
}

uint32_t MemoryModel::setOf(BlockAddr Block) const {
  if (!isSymbolic(Block))
    return Config.setOf(Block);
  // Instance k of an array pressures the set its k-th line would occupy.
  VarId V = varOfBlock(Block);
  if (V == InvalidVar)
    return Config.setOf(Block);
  uint64_t K = Block - SymbolicFirst[V];
  return Config.setOf(firstBlockOf(V) + K);
}

std::string MemoryModel::blockName(BlockAddr Block) const {
  VarId V = varOfBlock(Block);
  if (V == InvalidVar)
    return "<block " + std::to_string(Block) + ">";
  const MemVar &Var = P->Vars[V];
  if (isSymbolic(Block)) {
    uint64_t K = Block - SymbolicFirst[V];
    // Paper style: first nondeterministic pick prints as name[1*].
    return Var.Name + "[" + std::to_string(K + 1) + "*]";
  }
  if (BlockCounts[V] == 1 && Var.NumElements == 1)
    return Var.Name;
  uint64_t Line = Block - firstBlockOf(V);
  return Var.Name + "[" + std::to_string(Line) + "]";
}

std::vector<BlockAddr> MemoryModel::blocksOf(VarId Var) const {
  std::vector<BlockAddr> Blocks;
  BlockAddr First = firstBlockOf(Var);
  for (uint64_t I = 0; I != BlockCounts[Var]; ++I)
    Blocks.push_back(First + I);
  return Blocks;
}

std::vector<uint32_t> MemoryModel::setsOf(VarId Var) const {
  std::vector<uint32_t> Sets;
  for (BlockAddr Block : blocksOf(Var)) {
    uint32_t Set = Config.setOf(Block);
    if (std::find(Sets.begin(), Sets.end(), Set) == Sets.end())
      Sets.push_back(Set);
  }
  std::sort(Sets.begin(), Sets.end());
  return Sets;
}
