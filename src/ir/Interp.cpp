//===- Interp.cpp ---------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "ir/Interp.h"

#include <cassert>

using namespace specai;

Machine::Machine(const Program &P) : P(P) {
  Regs.assign(P.NumRegs, 0);
  Memory.resize(P.Vars.size());
  for (size_t V = 0; V != P.Vars.size(); ++V) {
    const MemVar &Var = P.Vars[V];
    Memory[V].assign(Var.NumElements, 0);
    for (size_t I = 0; I != Var.Init.size() && I != Var.NumElements; ++I)
      Memory[V][I] = Var.Init[I];
  }
  Halted = P.Blocks.empty();
}

void Machine::setMemory(VarId Var, uint64_t Element, int64_t Value) {
  assert(Var < Memory.size() && "variable out of range");
  assert(Element < Memory[Var].size() && "element out of range");
  Memory[Var][Element] = Value;
}

void Machine::setMemoryAll(VarId Var, const std::vector<int64_t> &Values) {
  assert(Var < Memory.size() && "variable out of range");
  for (size_t I = 0; I != Values.size() && I != Memory[Var].size(); ++I)
    Memory[Var][I] = Values[I];
}

bool Machine::setRegGlobal(const std::string &Name, int64_t Value) {
  for (const RegGlobal &G : P.RegGlobals) {
    if (G.Name == Name) {
      Regs[G.Reg] = Value;
      return true;
    }
  }
  return false;
}

int64_t Machine::readMemory(VarId Var, uint64_t Element) const {
  assert(Var < Memory.size() && Element < Memory[Var].size());
  return Memory[Var][Element];
}

int64_t Machine::readReg(RegId Reg) const {
  assert(Reg < Regs.size());
  return Regs[Reg];
}

const Instruction &Machine::currentInstruction() const {
  assert(!Halted && "machine is halted");
  return P.Blocks[CurBlock].Insts[CurInst];
}

int64_t Machine::evalOperand(const Operand &Op) const {
  switch (Op.K) {
  case Operand::Kind::None:
    return 0;
  case Operand::Kind::Imm:
    return Op.Imm;
  case Operand::Kind::Reg:
    return Regs[Op.Reg];
  }
  return 0;
}

uint64_t Machine::wrapIndex(VarId Var, int64_t Index) const {
  uint64_t N = P.Vars[Var].NumElements;
  assert(N != 0 && "variable with zero elements");
  int64_t M = Index % static_cast<int64_t>(N);
  if (M < 0)
    M += static_cast<int64_t>(N);
  return static_cast<uint64_t>(M);
}

Machine::StepResult Machine::step() {
  StepResult R;
  if (Halted) {
    R.DidHalt = true;
    return R;
  }
  R.Block = CurBlock;
  R.InstIndex = CurInst;

  const Instruction &I = P.Blocks[CurBlock].Insts[CurInst];
  switch (I.Op) {
  case Opcode::Mov:
    Regs[I.Dst] = evalOperand(I.A);
    ++CurInst;
    break;
  case Opcode::Bin:
    Regs[I.Dst] = evalIrBinOp(I.BinOp, evalOperand(I.A), evalOperand(I.B));
    ++CurInst;
    break;
  case Opcode::Load: {
    uint64_t Elem =
        I.Index.isNone() ? 0 : wrapIndex(I.Var, evalOperand(I.Index));
    Regs[I.Dst] = Memory[I.Var][Elem];
    R.DidAccess = true;
    R.Access = {I.Var, Elem, /*IsLoad=*/true, CurBlock, CurInst};
    ++CurInst;
    break;
  }
  case Opcode::Store: {
    uint64_t Elem =
        I.Index.isNone() ? 0 : wrapIndex(I.Var, evalOperand(I.Index));
    if (!SuppressStores)
      Memory[I.Var][Elem] = evalOperand(I.A);
    R.DidAccess = true;
    R.Access = {I.Var, Elem, /*IsLoad=*/false, CurBlock, CurInst};
    ++CurInst;
    break;
  }
  case Opcode::Br: {
    bool Taken = evalOperand(I.A) != 0;
    R.WasBranch = true;
    R.BranchTaken = Taken;
    CurBlock = Taken ? I.TrueTarget : I.FalseTarget;
    CurInst = 0;
    break;
  }
  case Opcode::Jmp:
    CurBlock = I.TrueTarget;
    CurInst = 0;
    break;
  case Opcode::Ret:
    RetVal = evalOperand(I.A);
    Halted = true;
    R.DidHalt = true;
    break;
  case Opcode::Call:
    // Summarize-mode programs are analyzed abstractly, never executed;
    // concrete legs always run the InlineUnroll program. If one reaches an
    // interpreter anyway, treat the call result as an unknown zero so the
    // machine stays total.
    Regs[I.Dst] = 0;
    ++CurInst;
    break;
  case Opcode::Fence:
    // Architecturally a no-op; its speculation-barrier effect lives in the
    // pipeline (SpeculativeCpu ends the window) and the abstract engines.
    ++CurInst;
    break;
  }
  return R;
}

uint64_t Machine::run(uint64_t MaxSteps, std::vector<AccessEvent> *Trace) {
  uint64_t Steps = 0;
  while (!Halted && Steps < MaxSteps) {
    StepResult R = step();
    ++Steps;
    if (R.DidAccess && Trace)
      Trace->push_back(R.Access);
  }
  return Steps;
}

Machine::Checkpoint Machine::checkpoint() const {
  return Checkpoint{Regs, CurBlock, CurInst, Halted, RetVal};
}

void Machine::restore(const Checkpoint &C) {
  Regs = C.Regs;
  CurBlock = C.Block;
  CurInst = C.Inst;
  Halted = C.Halted;
  RetVal = C.RetVal;
}

void Machine::jumpTo(BlockId Block, uint32_t Inst) {
  assert(Block < P.Blocks.size());
  CurBlock = Block;
  CurInst = Inst;
  Halted = false;
}
