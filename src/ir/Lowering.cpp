//===- Lowering.cpp -------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "ir/Lowering.h"

#include "lang/Sema.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>
#include <utility>

using namespace specai;

/// True when evaluating the expression performs no loads and no calls
/// (registers and literals only), so replacing it with its folded constant
/// drops nothing the cache analysis should see. Defined below.
static bool exprIsPure(const Expr *E);

namespace {

/// Break/continue targets for the innermost enclosing loop.
struct LoopContext {
  BlockId BreakTarget;
  BlockId ContinueTarget;
};

/// Return plumbing for one inlined call site.
struct CallContext {
  RegId RetReg;
  BlockId ContBlock;
};

/// A recognized counted `for` loop: the induction variable, its start and
/// step constants, and the full per-iteration value sequence. InlineUnroll
/// clones the body once per TripValues entry; Summarize keeps the loop
/// rolled and records TripValues.size() as the static trip count.
struct CountedForShape {
  const VarDecl *Var = nullptr;
  int64_t Start = 0;
  int64_t Step = 0;
  std::vector<int64_t> TripValues;
};

class Lowerer {
public:
  Lowerer(const TranslationUnit &Unit, const LoweringOptions &Options,
          DiagnosticEngine &Diags)
      : Unit(Unit), Options(Options), Diags(Diags) {}

  std::optional<Program> run();
  std::optional<LoweredModule> runModule();

private:
  // Program construction helpers.
  RegId newReg() { return P.NumRegs++; }
  BlockId newBlock(std::string Name);
  void emit(Instruction Inst);
  void emitJmp(BlockId Target, SourceLoc Loc);
  void emitBr(Operand Cond, BlockId TrueTarget, BlockId FalseTarget,
              SourceLoc Loc);
  void setBlock(BlockId Block) {
    CurBlock = Block;
    Sealed = false;
  }

  // Variable mapping.
  VarId getMemVar(const VarDecl *Decl);
  RegId getRegVar(const VarDecl *Decl);

  // Constant tracking.
  std::optional<int64_t> foldExpr(const Expr *E);
  void clearRegConsts() { RegConsts.clear(); }

  // Expression lowering.
  Operand lowerExpr(const Expr *E);
  Operand lowerBinary(const BinaryExpr *BE);
  Operand lowerShortCircuit(const BinaryExpr *BE);
  Operand lowerTernary(const TernaryExpr *TE);
  Operand lowerCall(const CallExpr *CE);
  Operand emitBinOp(IrBinOp Op, Operand L, Operand R, SourceLoc Loc);

  // Statement lowering.
  void lowerStmt(const Stmt *S);
  void lowerAssign(const AssignStmt *AS);
  void lowerVarInit(const VarDecl *Decl);
  void lowerIf(const IfStmt *IS);
  void lowerWhile(const WhileStmt *WS);
  void lowerDoWhile(const DoWhileStmt *DS);
  void lowerFor(const ForStmt *FS);
  bool tryUnrollFor(const ForStmt *FS);
  std::optional<CountedForShape> matchCountedFor(const ForStmt *FS);
  void lowerReturn(const ReturnStmt *RS);
  void lowerFunctionBody(const FuncDecl *Func);

  /// Assigns \p Value to a `reg` variable (Mov + constant tracking).
  void assignRegVar(const VarDecl *Decl, Operand Value, SourceLoc Loc);

  /// True if \p S (recursively) assigns \p Decl.
  static bool stmtAssignsVar(const Stmt *S, const VarDecl *Decl);
  /// True if \p S (recursively) contains a continue not nested in an inner
  /// loop.
  static bool stmtHasTopLevelContinue(const Stmt *S);
  /// True if \p S (recursively) contains a break not nested in an inner
  /// loop. Such loops have data-dependent trip counts (the paper's quantl
  /// scan) and are never unrolled.
  static bool stmtHasTopLevelBreak(const Stmt *S);

  const TranslationUnit &Unit;
  const LoweringOptions &Options;
  DiagnosticEngine &Diags;

  Program P;
  BlockId CurBlock = 0;
  bool Sealed = false;
  unsigned InlineDepth = 0;
  bool TooDeep = false;
  /// InlineUnroll for run(); Options.Mode for runModule().
  LoweringMode Mode = LoweringMode::InlineUnroll;
  /// Summarize mode: Program::CalleeNames index of each non-entry function.
  std::unordered_map<const FuncDecl *, uint32_t> CalleeIndex;

  std::unordered_map<const VarDecl *, VarId> MemIds;
  std::unordered_map<const VarDecl *, RegId> RegVars;
  /// Constant bindings for fully unrolled induction variables; consulted
  /// before RegConsts and never invalidated by control flow (the unroller
  /// verifies the body does not assign the variable).
  std::unordered_map<const VarDecl *, int64_t> UnrollBindings;
  /// Straight-line constant values of `reg` variables; invalidated at every
  /// control-flow join.
  std::unordered_map<const VarDecl *, int64_t> RegConsts;

  std::vector<LoopContext> LoopStack;
  std::vector<CallContext> CallStack;
};

} // namespace

BlockId Lowerer::newBlock(std::string Name) {
  P.Blocks.push_back(BasicBlock{std::move(Name), {}});
  return static_cast<BlockId>(P.Blocks.size() - 1);
}

void Lowerer::emit(Instruction Inst) {
  if (Sealed) {
    // Unreachable code (e.g. statements after return): park it in a fresh
    // dead block so the program stays structurally valid.
    setBlock(newBlock("dead"));
  }
  bool IsTerm = Inst.isTerminator();
  P.Blocks[CurBlock].Insts.push_back(std::move(Inst));
  if (IsTerm)
    Sealed = true;
}

void Lowerer::emitJmp(BlockId Target, SourceLoc Loc) {
  Instruction I;
  I.Op = Opcode::Jmp;
  I.TrueTarget = Target;
  I.Loc = Loc;
  emit(std::move(I));
}

void Lowerer::emitBr(Operand Cond, BlockId TrueTarget, BlockId FalseTarget,
                     SourceLoc Loc) {
  Instruction I;
  I.Op = Opcode::Br;
  I.A = Cond;
  I.TrueTarget = TrueTarget;
  I.FalseTarget = FalseTarget;
  I.Loc = Loc;
  emit(std::move(I));
}

VarId Lowerer::getMemVar(const VarDecl *Decl) {
  auto It = MemIds.find(Decl);
  if (It != MemIds.end())
    return It->second;

  MemVar Var;
  Var.Name = Decl->Parent ? Decl->Parent->Name + "." + Decl->Name : Decl->Name;
  // Distinct declarations may shadow each other; disambiguate clashes.
  if (P.findVar(Var.Name) != InvalidVar)
    Var.Name += "." + std::to_string(Decl->DeclId);
  Var.ElemSize = typeSizeInBytes(Decl->Type.Kind);
  Var.NumElements = Decl->NumElements;
  Var.IsSecret = Decl->Type.IsSecret;
  if (Decl->IsGlobal && !Decl->Init.empty()) {
    Var.HasInit = true;
    for (const Expr *Init : Decl->Init) {
      auto V = evaluateConstExpr(Init);
      Var.Init.push_back(V.value_or(0));
    }
  }
  VarId Id = static_cast<VarId>(P.Vars.size());
  P.Vars.push_back(std::move(Var));
  MemIds.emplace(Decl, Id);
  return Id;
}

RegId Lowerer::getRegVar(const VarDecl *Decl) {
  auto It = RegVars.find(Decl);
  if (It != RegVars.end())
    return It->second;
  RegId Reg = newReg();
  RegVars.emplace(Decl, Reg);
  if (Decl->IsGlobal)
    P.RegGlobals.push_back({Decl->Name, Reg, Decl->Type.IsSecret});
  return Reg;
}

std::optional<int64_t> Lowerer::foldExpr(const Expr *E) {
  if (!E)
    return std::nullopt;
  // VarRefs to bound induction variables and known-constant reg variables
  // fold; everything else defers to the pure constant evaluator.
  if (E->Kind == ExprKind::VarRef) {
    const auto *Ref = static_cast<const VarRefExpr *>(E);
    if (auto It = UnrollBindings.find(Ref->Decl); It != UnrollBindings.end())
      return It->second;
    if (Ref->Decl && Ref->Decl->Type.IsReg) {
      if (auto It = RegConsts.find(Ref->Decl); It != RegConsts.end())
        return It->second;
    }
    return std::nullopt;
  }
  if (E->Kind == ExprKind::Unary) {
    const auto *UE = static_cast<const UnaryExpr *>(E);
    auto V = foldExpr(UE->Operand);
    if (!V)
      return std::nullopt;
    switch (UE->Op) {
    case UnaryOpKind::Neg:
      return -*V;
    case UnaryOpKind::BitNot:
      return ~*V;
    case UnaryOpKind::LogNot:
      return *V == 0 ? 1 : 0;
    }
  }
  if (E->Kind == ExprKind::Binary) {
    const auto *BE = static_cast<const BinaryExpr *>(E);
    auto L = foldExpr(BE->LHS);
    if (!L)
      return std::nullopt;
    if (BE->Op == BinaryOpKind::LogAnd && *L == 0)
      return 0;
    if (BE->Op == BinaryOpKind::LogOr && *L != 0)
      return 1;
    auto R = foldExpr(BE->RHS);
    if (!R)
      return std::nullopt;
    // Reuse the pure evaluator through a synthesized literal pair is not
    // possible without allocation; replicate via IR op mapping instead.
    switch (BE->Op) {
    case BinaryOpKind::Add:
      return evalIrBinOp(IrBinOp::Add, *L, *R);
    case BinaryOpKind::Sub:
      return evalIrBinOp(IrBinOp::Sub, *L, *R);
    case BinaryOpKind::Mul:
      return evalIrBinOp(IrBinOp::Mul, *L, *R);
    case BinaryOpKind::Div:
      if (*R == 0)
        return std::nullopt;
      return evalIrBinOp(IrBinOp::Div, *L, *R);
    case BinaryOpKind::Rem:
      if (*R == 0)
        return std::nullopt;
      return evalIrBinOp(IrBinOp::Rem, *L, *R);
    case BinaryOpKind::Shl:
      return evalIrBinOp(IrBinOp::Shl, *L, *R);
    case BinaryOpKind::Shr:
      return evalIrBinOp(IrBinOp::Shr, *L, *R);
    case BinaryOpKind::And:
      return evalIrBinOp(IrBinOp::And, *L, *R);
    case BinaryOpKind::Or:
      return evalIrBinOp(IrBinOp::Or, *L, *R);
    case BinaryOpKind::Xor:
      return evalIrBinOp(IrBinOp::Xor, *L, *R);
    case BinaryOpKind::LogAnd:
      return (*L != 0 && *R != 0) ? 1 : 0;
    case BinaryOpKind::LogOr:
      return (*L != 0 || *R != 0) ? 1 : 0;
    case BinaryOpKind::Eq:
      return evalIrBinOp(IrBinOp::Eq, *L, *R);
    case BinaryOpKind::Ne:
      return evalIrBinOp(IrBinOp::Ne, *L, *R);
    case BinaryOpKind::Lt:
      return evalIrBinOp(IrBinOp::Lt, *L, *R);
    case BinaryOpKind::Le:
      return evalIrBinOp(IrBinOp::Le, *L, *R);
    case BinaryOpKind::Gt:
      return evalIrBinOp(IrBinOp::Gt, *L, *R);
    case BinaryOpKind::Ge:
      return evalIrBinOp(IrBinOp::Ge, *L, *R);
    }
  }
  if (E->Kind == ExprKind::Ternary) {
    const auto *TE = static_cast<const TernaryExpr *>(E);
    auto C = foldExpr(TE->Cond);
    if (!C)
      return std::nullopt;
    return foldExpr(*C != 0 ? TE->TrueExpr : TE->FalseExpr);
  }
  return evaluateConstExpr(E);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Operand Lowerer::emitBinOp(IrBinOp Op, Operand L, Operand R, SourceLoc Loc) {
  if (L.isImm() && R.isImm())
    return Operand::imm(evalIrBinOp(Op, L.Imm, R.Imm));
  Instruction I;
  I.Op = Opcode::Bin;
  I.BinOp = Op;
  I.Dst = newReg();
  I.A = L;
  I.B = R;
  I.Loc = Loc;
  RegId Dst = I.Dst;
  emit(std::move(I));
  return Operand::reg(Dst);
}

Operand Lowerer::lowerExpr(const Expr *E) {
  if (!E)
    return Operand::imm(0);
  if (auto Folded = foldExpr(E)) {
    // Constant folding must not erase memory accesses; only fold categories
    // that never touch memory. (VarRef of a memory scalar can be "constant"
    // only through UnrollBindings, which never bind memory values.)
    bool TouchesMemory = false;
    if (E->Kind == ExprKind::Index || E->Kind == ExprKind::Call)
      TouchesMemory = true;
    if (E->Kind == ExprKind::VarRef) {
      const auto *Ref = static_cast<const VarRefExpr *>(E);
      TouchesMemory = Ref->Decl && !Ref->Decl->Type.IsReg &&
                      !UnrollBindings.count(Ref->Decl);
    }
    // Compound expressions may still contain loads/calls in subtrees even
    // when their value folds (e.g. `x*0`); be conservative and only fold
    // leaves and pure operator trees.
    if (!TouchesMemory && exprIsPure(E))
      return Operand::imm(*Folded);
  }

  switch (E->Kind) {
  case ExprKind::IntLit:
    return Operand::imm(static_cast<const IntLitExpr *>(E)->Value);
  case ExprKind::VarRef: {
    const auto *Ref = static_cast<const VarRefExpr *>(E);
    const VarDecl *Decl = Ref->Decl;
    assert(Decl && "Sema left an unresolved variable reference");
    if (auto It = UnrollBindings.find(Decl); It != UnrollBindings.end())
      return Operand::imm(It->second);
    if (Decl->Type.IsReg)
      return Operand::reg(getRegVar(Decl));
    // Memory-resident scalar: every use is a load.
    Instruction I;
    I.Op = Opcode::Load;
    I.Dst = newReg();
    I.Var = getMemVar(Decl);
    I.Loc = E->Loc;
    RegId Dst = I.Dst;
    emit(std::move(I));
    return Operand::reg(Dst);
  }
  case ExprKind::Index: {
    const auto *IE = static_cast<const IndexExpr *>(E);
    Operand Index = lowerExpr(IE->Index);
    Instruction I;
    I.Op = Opcode::Load;
    I.Dst = newReg();
    I.Var = getMemVar(IE->Base->Decl);
    I.Index = Index;
    I.Loc = E->Loc;
    RegId Dst = I.Dst;
    emit(std::move(I));
    return Operand::reg(Dst);
  }
  case ExprKind::Unary: {
    const auto *UE = static_cast<const UnaryExpr *>(E);
    Operand V = lowerExpr(UE->Operand);
    switch (UE->Op) {
    case UnaryOpKind::Neg:
      return emitBinOp(IrBinOp::Sub, Operand::imm(0), V, E->Loc);
    case UnaryOpKind::BitNot:
      return emitBinOp(IrBinOp::Xor, V, Operand::imm(-1), E->Loc);
    case UnaryOpKind::LogNot:
      return emitBinOp(IrBinOp::Eq, V, Operand::imm(0), E->Loc);
    }
    return Operand::imm(0);
  }
  case ExprKind::Binary:
    return lowerBinary(static_cast<const BinaryExpr *>(E));
  case ExprKind::Ternary:
    return lowerTernary(static_cast<const TernaryExpr *>(E));
  case ExprKind::Call:
    return lowerCall(static_cast<const CallExpr *>(E));
  }
  return Operand::imm(0);
}

static bool exprIsPureImpl(const Expr *E) {
  switch (E->Kind) {
  case ExprKind::IntLit:
    return true;
  case ExprKind::VarRef: {
    const auto *Ref = static_cast<const VarRefExpr *>(E);
    return Ref->Decl && Ref->Decl->Type.IsReg;
  }
  case ExprKind::Index:
  case ExprKind::Call:
    return false;
  case ExprKind::Unary:
    return exprIsPureImpl(static_cast<const UnaryExpr *>(E)->Operand);
  case ExprKind::Binary: {
    const auto *BE = static_cast<const BinaryExpr *>(E);
    return exprIsPureImpl(BE->LHS) && exprIsPureImpl(BE->RHS);
  }
  case ExprKind::Ternary: {
    const auto *TE = static_cast<const TernaryExpr *>(E);
    return exprIsPureImpl(TE->Cond) && exprIsPureImpl(TE->TrueExpr) &&
           exprIsPureImpl(TE->FalseExpr);
  }
  }
  return false;
}

static bool exprIsPure(const Expr *E) { return exprIsPureImpl(E); }

Operand Lowerer::lowerBinary(const BinaryExpr *BE) {
  if (BE->Op == BinaryOpKind::LogAnd || BE->Op == BinaryOpKind::LogOr)
    return lowerShortCircuit(BE);

  Operand L = lowerExpr(BE->LHS);
  Operand R = lowerExpr(BE->RHS);
  IrBinOp Op;
  switch (BE->Op) {
  case BinaryOpKind::Add:
    Op = IrBinOp::Add;
    break;
  case BinaryOpKind::Sub:
    Op = IrBinOp::Sub;
    break;
  case BinaryOpKind::Mul:
    Op = IrBinOp::Mul;
    break;
  case BinaryOpKind::Div:
    Op = IrBinOp::Div;
    break;
  case BinaryOpKind::Rem:
    Op = IrBinOp::Rem;
    break;
  case BinaryOpKind::Shl:
    Op = IrBinOp::Shl;
    break;
  case BinaryOpKind::Shr:
    Op = IrBinOp::Shr;
    break;
  case BinaryOpKind::And:
    Op = IrBinOp::And;
    break;
  case BinaryOpKind::Or:
    Op = IrBinOp::Or;
    break;
  case BinaryOpKind::Xor:
    Op = IrBinOp::Xor;
    break;
  case BinaryOpKind::Eq:
    Op = IrBinOp::Eq;
    break;
  case BinaryOpKind::Ne:
    Op = IrBinOp::Ne;
    break;
  case BinaryOpKind::Lt:
    Op = IrBinOp::Lt;
    break;
  case BinaryOpKind::Le:
    Op = IrBinOp::Le;
    break;
  case BinaryOpKind::Gt:
    Op = IrBinOp::Gt;
    break;
  case BinaryOpKind::Ge:
    Op = IrBinOp::Ge;
    break;
  default:
    Op = IrBinOp::Add;
    break;
  }
  return emitBinOp(Op, L, R, BE->Loc);
}

Operand Lowerer::lowerShortCircuit(const BinaryExpr *BE) {
  bool IsAnd = BE->Op == BinaryOpKind::LogAnd;
  Operand L = lowerExpr(BE->LHS);

  if (L.isImm()) {
    // Statically decided: either the RHS decides the value, or it is never
    // evaluated at all (so its loads must not be emitted).
    bool LhsTrue = L.Imm != 0;
    if (IsAnd && !LhsTrue)
      return Operand::imm(0);
    if (!IsAnd && LhsTrue)
      return Operand::imm(1);
    Operand R = lowerExpr(BE->RHS);
    return emitBinOp(IrBinOp::Ne, R, Operand::imm(0), BE->Loc);
  }

  RegId Result = newReg();
  BlockId RhsBlock = newBlock(IsAnd ? "and.rhs" : "or.rhs");
  BlockId EndBlock = newBlock(IsAnd ? "and.end" : "or.end");

  // Seed the result with the short-circuit value, then branch.
  Instruction Seed;
  Seed.Op = Opcode::Mov;
  Seed.Dst = Result;
  Seed.A = Operand::imm(IsAnd ? 0 : 1);
  Seed.Loc = BE->Loc;
  emit(std::move(Seed));
  if (IsAnd)
    emitBr(L, RhsBlock, EndBlock, BE->Loc);
  else
    emitBr(L, EndBlock, RhsBlock, BE->Loc);

  setBlock(RhsBlock);
  Operand R = lowerExpr(BE->RHS);
  Operand Norm = emitBinOp(IrBinOp::Ne, R, Operand::imm(0), BE->Loc);
  Instruction SetR;
  SetR.Op = Opcode::Mov;
  SetR.Dst = Result;
  SetR.A = Norm;
  SetR.Loc = BE->Loc;
  emit(std::move(SetR));
  emitJmp(EndBlock, BE->Loc);

  setBlock(EndBlock);
  clearRegConsts();
  return Operand::reg(Result);
}

Operand Lowerer::lowerTernary(const TernaryExpr *TE) {
  Operand Cond = lowerExpr(TE->Cond);
  if (Cond.isImm())
    return lowerExpr(Cond.Imm != 0 ? TE->TrueExpr : TE->FalseExpr);

  RegId Result = newReg();
  BlockId TrueBlock = newBlock("sel.true");
  BlockId FalseBlock = newBlock("sel.false");
  BlockId EndBlock = newBlock("sel.end");
  emitBr(Cond, TrueBlock, FalseBlock, TE->Loc);

  setBlock(TrueBlock);
  Operand TV = lowerExpr(TE->TrueExpr);
  Instruction MovT;
  MovT.Op = Opcode::Mov;
  MovT.Dst = Result;
  MovT.A = TV;
  MovT.Loc = TE->Loc;
  emit(std::move(MovT));
  emitJmp(EndBlock, TE->Loc);

  setBlock(FalseBlock);
  Operand FV = lowerExpr(TE->FalseExpr);
  Instruction MovF;
  MovF.Op = Opcode::Mov;
  MovF.Dst = Result;
  MovF.A = FV;
  MovF.Loc = TE->Loc;
  emit(std::move(MovF));
  emitJmp(EndBlock, TE->Loc);

  setBlock(EndBlock);
  clearRegConsts();
  return Operand::reg(Result);
}

Operand Lowerer::lowerCall(const CallExpr *CE) {
  const FuncDecl *Callee = CE->Decl;
  assert(Callee && "Sema left an unresolved call");

  if (Mode == LoweringMode::Summarize) {
    // Pass arguments into the callee's parameter slots (the callee Program
    // reads the same shared slots), then transfer through a Call node the
    // engines resolve with the callee's summary. No inlining, so arbitrary
    // call-chain depth is fine.
    for (size_t I = 0; I != CE->Args.size() && I != Callee->Params.size();
         ++I) {
      Operand Arg = lowerExpr(CE->Args[I]);
      const VarDecl *Param = Callee->Params[I];
      if (Param->Type.IsReg) {
        assignRegVar(Param, Arg, CE->Loc);
        continue;
      }
      Instruction Store;
      Store.Op = Opcode::Store;
      Store.Var = getMemVar(Param);
      Store.A = Arg;
      Store.Loc = CE->Loc;
      emit(std::move(Store));
    }
    auto It = CalleeIndex.find(Callee);
    assert(It != CalleeIndex.end() && "call to a function outside the module");
    Instruction I;
    I.Op = Opcode::Call;
    I.Dst = newReg();
    I.Callee = It->second;
    I.Loc = CE->Loc;
    RegId Dst = I.Dst;
    emit(std::move(I));
    // The callee may write reg globals and reuses local/param slots; no
    // constant binding survives the call.
    clearRegConsts();
    if (Callee->ReturnType.Kind == TypeKind::Void)
      return Operand::none();
    return Operand::reg(Dst);
  }

  if (InlineDepth >= Options.MaxInlineDepth) {
    if (!TooDeep) {
      Diags.error(CE->Loc, "call chain exceeds the maximum inline depth");
      TooDeep = true;
    }
    return Operand::imm(0);
  }

  // Pass arguments into the callee's parameter slots.
  for (size_t I = 0; I != CE->Args.size() && I != Callee->Params.size(); ++I) {
    Operand Arg = lowerExpr(CE->Args[I]);
    const VarDecl *Param = Callee->Params[I];
    if (Param->Type.IsReg) {
      assignRegVar(Param, Arg, CE->Loc);
      continue;
    }
    Instruction Store;
    Store.Op = Opcode::Store;
    Store.Var = getMemVar(Param);
    Store.A = Arg;
    Store.Loc = CE->Loc;
    emit(std::move(Store));
  }

  RegId RetReg = newReg();
  BlockId ContBlock = newBlock(Callee->Name + ".cont");
  CallStack.push_back({RetReg, ContBlock});

  // The callee's reg locals start with unknown values at each call site.
  for (const VarDecl *Local : Callee->Locals)
    RegConsts.erase(Local);

  ++InlineDepth;
  lowerFunctionBody(Callee);
  --InlineDepth;

  if (!Sealed)
    emitJmp(ContBlock, CE->Loc);
  CallStack.pop_back();
  setBlock(ContBlock);
  clearRegConsts();

  if (Callee->ReturnType.Kind == TypeKind::Void)
    return Operand::none();
  return Operand::reg(RetReg);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Lowerer::assignRegVar(const VarDecl *Decl, Operand Value,
                           SourceLoc Loc) {
  assert(Decl->Type.IsReg && "not a register variable");
  Instruction Mov;
  Mov.Op = Opcode::Mov;
  Mov.Dst = getRegVar(Decl);
  Mov.A = Value.isNone() ? Operand::imm(0) : Value;
  Mov.Loc = Loc;
  emit(std::move(Mov));
  if (Value.isImm())
    RegConsts[Decl] = Value.Imm;
  else
    RegConsts.erase(Decl);
}

void Lowerer::lowerVarInit(const VarDecl *Decl) {
  if (Decl->Init.empty())
    return;
  if (!Decl->IsArray) {
    Operand Value = lowerExpr(Decl->Init.front());
    if (Decl->Type.IsReg) {
      assignRegVar(Decl, Value, Decl->Loc);
      return;
    }
    Instruction Store;
    Store.Op = Opcode::Store;
    Store.Var = getMemVar(Decl);
    Store.A = Value;
    Store.Loc = Decl->Loc;
    emit(std::move(Store));
    return;
  }
  // Local array initializer: one store per element.
  for (size_t I = 0; I != Decl->Init.size(); ++I) {
    Operand Value = lowerExpr(Decl->Init[I]);
    Instruction Store;
    Store.Op = Opcode::Store;
    Store.Var = getMemVar(Decl);
    Store.Index = Operand::imm(static_cast<int64_t>(I));
    Store.A = Value;
    Store.Loc = Decl->Loc;
    emit(std::move(Store));
  }
}

void Lowerer::lowerAssign(const AssignStmt *AS) {
  if (AS->Target->Kind == ExprKind::VarRef) {
    const auto *Ref = static_cast<const VarRefExpr *>(AS->Target);
    const VarDecl *Decl = Ref->Decl;
    if (!Decl)
      return;
    assert(!UnrollBindings.count(Decl) &&
           "unroller must reject loops whose body assigns the induction "
           "variable");
    Operand Value = lowerExpr(AS->Value);
    if (Decl->Type.IsReg) {
      assignRegVar(Decl, Value, AS->Loc);
      return;
    }
    Instruction Store;
    Store.Op = Opcode::Store;
    Store.Var = getMemVar(Decl);
    Store.A = Value;
    Store.Loc = AS->Loc;
    emit(std::move(Store));
    return;
  }

  const auto *IE = static_cast<const IndexExpr *>(AS->Target);
  if (!IE->Base->Decl)
    return;
  Operand Index = lowerExpr(IE->Index);
  Operand Value = lowerExpr(AS->Value);
  Instruction Store;
  Store.Op = Opcode::Store;
  Store.Var = getMemVar(IE->Base->Decl);
  Store.Index = Index;
  Store.A = Value;
  Store.Loc = AS->Loc;
  emit(std::move(Store));
}

void Lowerer::lowerIf(const IfStmt *IS) {
  Operand Cond = lowerExpr(IS->Cond);
  if (Cond.isImm()) {
    // Statically decided branch (common after unrolling): emit only the
    // taken side; no branch instruction, no speculation site.
    if (Cond.Imm != 0)
      lowerStmt(IS->Then);
    else if (IS->Else)
      lowerStmt(IS->Else);
    return;
  }

  BlockId ThenBlock = newBlock("if.then");
  BlockId EndBlock = newBlock("if.end");
  BlockId ElseBlock = IS->Else ? newBlock("if.else") : EndBlock;
  emitBr(Cond, ThenBlock, ElseBlock, IS->Loc);

  setBlock(ThenBlock);
  clearRegConsts();
  lowerStmt(IS->Then);
  if (!Sealed)
    emitJmp(EndBlock, IS->Loc);

  if (IS->Else) {
    setBlock(ElseBlock);
    clearRegConsts();
    lowerStmt(IS->Else);
    if (!Sealed)
      emitJmp(EndBlock, IS->Loc);
  }

  setBlock(EndBlock);
  clearRegConsts();
}

void Lowerer::lowerWhile(const WhileStmt *WS) {
  BlockId Header = newBlock("while.header");
  BlockId Body = newBlock("while.body");
  BlockId End = newBlock("while.end");

  emitJmp(Header, WS->Loc);
  setBlock(Header);
  clearRegConsts();
  Operand Cond = lowerExpr(WS->Cond);
  if (Cond.isImm()) {
    if (Cond.Imm != 0)
      emitJmp(Body, WS->Loc);
    else
      emitJmp(End, WS->Loc);
  } else {
    emitBr(Cond, Body, End, WS->Loc);
  }

  setBlock(Body);
  clearRegConsts();
  LoopStack.push_back({End, Header});
  lowerStmt(WS->Body);
  LoopStack.pop_back();
  if (!Sealed)
    emitJmp(Header, WS->Loc);

  setBlock(End);
  clearRegConsts();
}

void Lowerer::lowerDoWhile(const DoWhileStmt *DS) {
  BlockId Body = newBlock("do.body");
  BlockId CondBlock = newBlock("do.cond");
  BlockId End = newBlock("do.end");

  emitJmp(Body, DS->Loc);
  setBlock(Body);
  clearRegConsts();
  LoopStack.push_back({End, CondBlock});
  lowerStmt(DS->Body);
  LoopStack.pop_back();
  if (!Sealed)
    emitJmp(CondBlock, DS->Loc);

  setBlock(CondBlock);
  clearRegConsts();
  Operand Cond = lowerExpr(DS->Cond);
  if (Cond.isImm()) {
    if (Cond.Imm != 0)
      emitJmp(Body, DS->Loc);
    else
      emitJmp(End, DS->Loc);
  } else {
    emitBr(Cond, Body, End, DS->Loc);
  }

  setBlock(End);
  clearRegConsts();
}

bool Lowerer::stmtAssignsVar(const Stmt *S, const VarDecl *Decl) {
  if (!S)
    return false;
  switch (S->Kind) {
  case StmtKind::Assign: {
    const auto *AS = static_cast<const AssignStmt *>(S);
    if (AS->Target->Kind == ExprKind::VarRef &&
        static_cast<const VarRefExpr *>(AS->Target)->Decl == Decl)
      return true;
    return false;
  }
  case StmtKind::Block: {
    for (const Stmt *Child : static_cast<const BlockStmt *>(S)->Body)
      if (stmtAssignsVar(Child, Decl))
        return true;
    return false;
  }
  case StmtKind::If: {
    const auto *IS = static_cast<const IfStmt *>(S);
    return stmtAssignsVar(IS->Then, Decl) || stmtAssignsVar(IS->Else, Decl);
  }
  case StmtKind::For: {
    const auto *FS = static_cast<const ForStmt *>(S);
    return stmtAssignsVar(FS->Init, Decl) || stmtAssignsVar(FS->Step, Decl) ||
           stmtAssignsVar(FS->Body, Decl);
  }
  case StmtKind::While:
    return stmtAssignsVar(static_cast<const WhileStmt *>(S)->Body, Decl);
  case StmtKind::DoWhile:
    return stmtAssignsVar(static_cast<const DoWhileStmt *>(S)->Body, Decl);
  default:
    return false;
  }
}

bool Lowerer::stmtHasTopLevelContinue(const Stmt *S) {
  if (!S)
    return false;
  switch (S->Kind) {
  case StmtKind::Continue:
    return true;
  case StmtKind::Block: {
    for (const Stmt *Child : static_cast<const BlockStmt *>(S)->Body)
      if (stmtHasTopLevelContinue(Child))
        return true;
    return false;
  }
  case StmtKind::If: {
    const auto *IS = static_cast<const IfStmt *>(S);
    return stmtHasTopLevelContinue(IS->Then) ||
           stmtHasTopLevelContinue(IS->Else);
  }
  // Inner loops capture their own continues.
  case StmtKind::For:
  case StmtKind::While:
  case StmtKind::DoWhile:
  default:
    return false;
  }
}

bool Lowerer::stmtHasTopLevelBreak(const Stmt *S) {
  if (!S)
    return false;
  switch (S->Kind) {
  case StmtKind::Break:
    return true;
  case StmtKind::Block: {
    for (const Stmt *Child : static_cast<const BlockStmt *>(S)->Body)
      if (stmtHasTopLevelBreak(Child))
        return true;
    return false;
  }
  case StmtKind::If: {
    const auto *IS = static_cast<const IfStmt *>(S);
    return stmtHasTopLevelBreak(IS->Then) || stmtHasTopLevelBreak(IS->Else);
  }
  // Inner loops capture their own breaks.
  case StmtKind::For:
  case StmtKind::While:
  case StmtKind::DoWhile:
  default:
    return false;
  }
}

std::optional<CountedForShape> Lowerer::matchCountedFor(const ForStmt *FS) {
  if (!FS->Init || !FS->Cond || !FS->Step)
    return std::nullopt;

  // A conditional break makes the trip count data dependent; keep the loop
  // and let the fixed point widen over it (paper §6.3's "unresolved"
  // loops, e.g. the quantl decision-level scan).
  if (stmtHasTopLevelBreak(FS->Body))
    return std::nullopt;

  // Recognize: init `v = C0`, cond `v <cmp> C1` (or reversed), step
  // `v = v (+|-) C2`.
  const VarDecl *Var = nullptr;
  int64_t Start = 0;

  if (FS->Init->Kind == StmtKind::Decl) {
    const auto *DS = static_cast<const DeclStmt *>(FS->Init);
    if (DS->Decls.size() != 1)
      return std::nullopt;
    const VarDecl *Decl = DS->Decls.front();
    if (Decl->IsArray || Decl->Init.size() != 1)
      return std::nullopt;
    auto C0 = foldExpr(Decl->Init.front());
    if (!C0)
      return std::nullopt;
    Var = Decl;
    Start = *C0;
  } else if (FS->Init->Kind == StmtKind::Assign) {
    const auto *AS = static_cast<const AssignStmt *>(FS->Init);
    if (AS->Target->Kind != ExprKind::VarRef)
      return std::nullopt;
    const auto *Ref = static_cast<const VarRefExpr *>(AS->Target);
    auto C0 = foldExpr(AS->Value);
    if (!C0 || !Ref->Decl)
      return std::nullopt;
    Var = Ref->Decl;
    Start = *C0;
  } else {
    return std::nullopt;
  }

  // Condition.
  if (FS->Cond->Kind != ExprKind::Binary)
    return std::nullopt;
  const auto *CondBin = static_cast<const BinaryExpr *>(FS->Cond);
  BinaryOpKind Cmp = CondBin->Op;
  const Expr *CondVarSide = CondBin->LHS;
  const Expr *CondBoundSide = CondBin->RHS;
  auto FlipCmp = [](BinaryOpKind Op) {
    switch (Op) {
    case BinaryOpKind::Lt:
      return BinaryOpKind::Gt;
    case BinaryOpKind::Le:
      return BinaryOpKind::Ge;
    case BinaryOpKind::Gt:
      return BinaryOpKind::Lt;
    case BinaryOpKind::Ge:
      return BinaryOpKind::Le;
    default:
      return Op;
    }
  };
  if (!(CondVarSide->Kind == ExprKind::VarRef &&
        static_cast<const VarRefExpr *>(CondVarSide)->Decl == Var)) {
    std::swap(CondVarSide, CondBoundSide);
    Cmp = FlipCmp(Cmp);
    if (!(CondVarSide->Kind == ExprKind::VarRef &&
          static_cast<const VarRefExpr *>(CondVarSide)->Decl == Var))
      return std::nullopt;
  }
  if (Cmp != BinaryOpKind::Lt && Cmp != BinaryOpKind::Le &&
      Cmp != BinaryOpKind::Gt && Cmp != BinaryOpKind::Ge &&
      Cmp != BinaryOpKind::Ne)
    return std::nullopt;
  auto Bound = foldExpr(CondBoundSide);
  if (!Bound)
    return std::nullopt;

  // Step.
  if (FS->Step->Kind != StmtKind::Assign)
    return std::nullopt;
  const auto *StepAssign = static_cast<const AssignStmt *>(FS->Step);
  if (StepAssign->Target->Kind != ExprKind::VarRef ||
      static_cast<const VarRefExpr *>(StepAssign->Target)->Decl != Var)
    return std::nullopt;
  if (StepAssign->Value->Kind != ExprKind::Binary)
    return std::nullopt;
  const auto *StepBin = static_cast<const BinaryExpr *>(StepAssign->Value);
  if (StepBin->Op != BinaryOpKind::Add && StepBin->Op != BinaryOpKind::Sub)
    return std::nullopt;
  if (StepBin->LHS->Kind != ExprKind::VarRef ||
      static_cast<const VarRefExpr *>(StepBin->LHS)->Decl != Var)
    return std::nullopt;
  auto StepC = foldExpr(StepBin->RHS);
  if (!StepC || *StepC == 0)
    return std::nullopt;
  int64_t Step = StepBin->Op == BinaryOpKind::Add ? *StepC : -*StepC;

  // The body must not redefine the induction variable.
  if (stmtAssignsVar(FS->Body, Var))
    return std::nullopt;

  // Compute the trip sequence.
  auto Holds = [&](int64_t V) {
    switch (Cmp) {
    case BinaryOpKind::Lt:
      return V < *Bound;
    case BinaryOpKind::Le:
      return V <= *Bound;
    case BinaryOpKind::Gt:
      return V > *Bound;
    case BinaryOpKind::Ge:
      return V >= *Bound;
    case BinaryOpKind::Ne:
      return V != *Bound;
    default:
      return false;
    }
  };
  CountedForShape Shape;
  Shape.Var = Var;
  Shape.Start = Start;
  Shape.Step = Step;
  for (int64_t V = Start; Holds(V); V += Step) {
    Shape.TripValues.push_back(V);
    if (Shape.TripValues.size() > Options.MaxUnrollIterations)
      return std::nullopt;
  }
  return Shape;
}

bool Lowerer::tryUnrollFor(const ForStmt *FS) {
  if (!Options.EnableUnrolling)
    return false;
  std::optional<CountedForShape> Shape = matchCountedFor(FS);
  if (!Shape)
    return false;
  const VarDecl *Var = Shape->Var;
  const std::vector<int64_t> &TripValues = Shape->TripValues;

  bool IsMemoryVar = !Var->Type.IsReg;
  bool HasContinue = stmtHasTopLevelContinue(FS->Body);
  BlockId EndBlock = newBlock("unroll.end");

  auto StoreInduction = [&](int64_t Value) {
    if (!IsMemoryVar)
      return;
    // The real loop stores the induction variable at init and at each
    // step; keeping these stores preserves the variable's own cache
    // footprint and aging pressure.
    Instruction Store;
    Store.Op = Opcode::Store;
    Store.Var = getMemVar(Var);
    Store.A = Operand::imm(Value);
    Store.Loc = FS->Loc;
    emit(std::move(Store));
  };

  for (int64_t Value : TripValues) {
    StoreInduction(Value);
    UnrollBindings[Var] = Value;
    BlockId IterEnd = InvalidBlock;
    if (HasContinue) {
      IterEnd = newBlock("iter.end");
      LoopStack.push_back({EndBlock, IterEnd});
    } else {
      LoopStack.push_back({EndBlock, EndBlock});
    }
    lowerStmt(FS->Body);
    LoopStack.pop_back();
    if (HasContinue) {
      if (!Sealed)
        emitJmp(IterEnd, FS->Loc);
      setBlock(IterEnd);
      clearRegConsts();
    } else if (Sealed) {
      // Whole-body return/break sealed the path; later iterations are
      // unreachable. Stop emitting them.
      UnrollBindings.erase(Var);
      setBlock(EndBlock);
      clearRegConsts();
      return true;
    }
  }
  UnrollBindings.erase(Var);

  // Final induction value after the loop.
  int64_t FinalValue =
      TripValues.empty() ? Shape->Start : TripValues.back() + Shape->Step;
  if (IsMemoryVar) {
    StoreInduction(FinalValue);
  } else {
    assignRegVar(Var, Operand::imm(FinalValue), FS->Loc);
  }

  if (!Sealed)
    emitJmp(EndBlock, FS->Loc);
  setBlock(EndBlock);
  clearRegConsts();
  return true;
}

void Lowerer::lowerFor(const ForStmt *FS) {
  if (Mode == LoweringMode::InlineUnroll && tryUnrollFor(FS))
    return;

  // Summarize keeps counted loops rolled but records their static trip
  // count so WCET can scale the body by it instead of the global loop
  // bound.
  std::optional<CountedForShape> Rolled;
  if (Mode == LoweringMode::Summarize)
    Rolled = matchCountedFor(FS);

  if (FS->Init)
    lowerStmt(FS->Init);

  BlockId Header = newBlock("for.header");
  BlockId Body = newBlock("for.body");
  BlockId StepBlock = newBlock("for.step");
  BlockId End = newBlock("for.end");
  if (Rolled)
    P.LoopTrips.push_back(
        {Header, static_cast<uint64_t>(Rolled->TripValues.size()) + 1});

  emitJmp(Header, FS->Loc);
  setBlock(Header);
  clearRegConsts();
  if (FS->Cond) {
    Operand Cond = lowerExpr(FS->Cond);
    if (Cond.isImm()) {
      if (Cond.Imm != 0)
        emitJmp(Body, FS->Loc);
      else
        emitJmp(End, FS->Loc);
    } else {
      emitBr(Cond, Body, End, FS->Loc);
    }
  } else {
    emitJmp(Body, FS->Loc);
  }

  setBlock(Body);
  clearRegConsts();
  LoopStack.push_back({End, StepBlock});
  lowerStmt(FS->Body);
  LoopStack.pop_back();
  if (!Sealed)
    emitJmp(StepBlock, FS->Loc);

  setBlock(StepBlock);
  clearRegConsts();
  if (FS->Step)
    lowerStmt(FS->Step);
  if (!Sealed)
    emitJmp(Header, FS->Loc);

  setBlock(End);
  clearRegConsts();
}

void Lowerer::lowerReturn(const ReturnStmt *RS) {
  Operand Value = RS->Value ? lowerExpr(RS->Value) : Operand::none();
  if (CallStack.empty()) {
    Instruction Ret;
    Ret.Op = Opcode::Ret;
    Ret.A = Value;
    Ret.Loc = RS->Loc;
    emit(std::move(Ret));
    return;
  }
  const CallContext &Ctx = CallStack.back();
  if (!Value.isNone()) {
    Instruction Mov;
    Mov.Op = Opcode::Mov;
    Mov.Dst = Ctx.RetReg;
    Mov.A = Value;
    Mov.Loc = RS->Loc;
    emit(std::move(Mov));
  }
  emitJmp(Ctx.ContBlock, RS->Loc);
}

void Lowerer::lowerStmt(const Stmt *S) {
  if (!S)
    return;
  switch (S->Kind) {
  case StmtKind::Decl:
    for (const VarDecl *Decl : static_cast<const DeclStmt *>(S)->Decls)
      lowerVarInit(Decl);
    return;
  case StmtKind::Assign:
    lowerAssign(static_cast<const AssignStmt *>(S));
    return;
  case StmtKind::Expr:
    lowerExpr(static_cast<const ExprStmt *>(S)->E);
    return;
  case StmtKind::Block:
    for (const Stmt *Child : static_cast<const BlockStmt *>(S)->Body)
      lowerStmt(Child);
    return;
  case StmtKind::If:
    lowerIf(static_cast<const IfStmt *>(S));
    return;
  case StmtKind::For:
    lowerFor(static_cast<const ForStmt *>(S));
    return;
  case StmtKind::While:
    lowerWhile(static_cast<const WhileStmt *>(S));
    return;
  case StmtKind::DoWhile:
    lowerDoWhile(static_cast<const DoWhileStmt *>(S));
    return;
  case StmtKind::Break:
    if (!LoopStack.empty())
      emitJmp(LoopStack.back().BreakTarget, S->Loc);
    return;
  case StmtKind::Continue:
    if (!LoopStack.empty())
      emitJmp(LoopStack.back().ContinueTarget, S->Loc);
    return;
  case StmtKind::Return:
    lowerReturn(static_cast<const ReturnStmt *>(S));
    return;
  }
}

void Lowerer::lowerFunctionBody(const FuncDecl *Func) {
  lowerStmt(Func->Body);
}

std::optional<Program> Lowerer::run() {
  const FuncDecl *Entry = Unit.findFunction(Options.EntryFunction);
  if (!Entry) {
    Diags.error(SourceLoc(), "entry function '" + Options.EntryFunction +
                                 "' not found");
    return std::nullopt;
  }
  P.EntryName = Entry->Name;

  BlockId EntryBlock = newBlock("entry");
  setBlock(EntryBlock);
  assert(EntryBlock == Program::EntryBlock && "entry must be block 0");

  // Materialize globals up front so VarIds are stable and independent of
  // first-use order inside the code.
  for (const VarDecl *Global : Unit.Globals) {
    if (Global->Type.IsReg) {
      RegId Reg = getRegVar(Global);
      if (!Global->Init.empty()) {
        auto V = evaluateConstExpr(Global->Init.front());
        Instruction Mov;
        Mov.Op = Opcode::Mov;
        Mov.Dst = Reg;
        Mov.A = Operand::imm(V.value_or(0));
        Mov.Loc = Global->Loc;
        emit(std::move(Mov));
        RegConsts[Global] = V.value_or(0);
      }
      continue;
    }
    getMemVar(Global);
  }

  // Entry parameters are program inputs: they get slots but no defined
  // initial values.
  for (const VarDecl *Param : Entry->Params) {
    if (Param->Type.IsReg)
      getRegVar(Param);
    else
      getMemVar(Param);
  }

  lowerFunctionBody(Entry);
  if (!Sealed) {
    Instruction Ret;
    Ret.Op = Opcode::Ret;
    emit(std::move(Ret));
  }

  if (Diags.hasErrors())
    return std::nullopt;
  return std::move(P);
}

std::optional<LoweredModule> Lowerer::runModule() {
  Mode = Options.Mode;
  const FuncDecl *Entry = Unit.findFunction(Options.EntryFunction);
  if (!Entry) {
    Diags.error(SourceLoc(), "entry function '" + Options.EntryFunction +
                                 "' not found");
    return std::nullopt;
  }

  // Bottom-up order: iterative post-order DFS over the acyclic call graph,
  // so every function is lowered (and later summarized) after all of its
  // callees. The entry pops last.
  std::vector<const FuncDecl *> Order;
  {
    std::unordered_set<const FuncDecl *> Done;
    std::vector<std::pair<const FuncDecl *, size_t>> Stack;
    Stack.push_back({Entry, 0});
    while (!Stack.empty()) {
      auto &Top = Stack.back();
      if (Top.second < Top.first->Callees.size()) {
        const FuncDecl *Callee = Top.first->Callees[Top.second++];
        if (!Done.count(Callee))
          Stack.push_back({Callee, 0});
        continue;
      }
      if (Done.insert(Top.first).second)
        Order.push_back(Top.first);
      Stack.pop_back();
    }
  }

  // Callee table: every reachable non-entry function, bottom-up, shared by
  // all Programs of the module.
  for (const FuncDecl *F : Order) {
    if (F == Entry)
      continue;
    CalleeIndex.emplace(F, static_cast<uint32_t>(P.CalleeNames.size()));
    P.CalleeNames.push_back(F->Name);
  }

  // Materialize globals up front so VarIds and RegIds are stable and
  // independent of which function touches them first.
  for (const VarDecl *Global : Unit.Globals) {
    if (Global->Type.IsReg)
      getRegVar(Global);
    else
      getMemVar(Global);
  }

  std::vector<Program> Funcs; // Parallel to Order.
  for (const FuncDecl *F : Order) {
    // Fresh per-function code state; the variable/register tables persist
    // so every Program indexes one shared layout.
    P.Blocks.clear();
    P.LoopTrips.clear();
    RegConsts.clear();
    UnrollBindings.clear();
    LoopStack.clear();
    assert(CallStack.empty() && "Summarize mode never inlines");

    BlockId EntryBlock = newBlock("entry");
    setBlock(EntryBlock);
    assert(EntryBlock == Program::EntryBlock && "entry must be block 0");

    if (F == Entry) {
      // Initial values of reg globals exist only on the entry path; callee
      // Programs are analyzed from an unknown register file.
      for (const VarDecl *Global : Unit.Globals) {
        if (!Global->Type.IsReg || Global->Init.empty())
          continue;
        auto V = evaluateConstExpr(Global->Init.front());
        Instruction Mov;
        Mov.Op = Opcode::Mov;
        Mov.Dst = getRegVar(Global);
        Mov.A = Operand::imm(V.value_or(0));
        Mov.Loc = Global->Loc;
        emit(std::move(Mov));
        RegConsts[Global] = V.value_or(0);
      }
    }

    // Parameter slots; call sites store arguments into these same slots
    // before the Call.
    for (const VarDecl *Param : F->Params) {
      if (Param->Type.IsReg)
        getRegVar(Param);
      else
        getMemVar(Param);
    }

    lowerFunctionBody(F);
    if (!Sealed) {
      Instruction Ret;
      Ret.Op = Opcode::Ret;
      emit(std::move(Ret));
    }

    Program FP;
    FP.EntryName = F->Name;
    FP.Blocks = std::move(P.Blocks);
    FP.LoopTrips = std::move(P.LoopTrips);
    Funcs.push_back(std::move(FP));
  }

  if (Diags.hasErrors())
    return std::nullopt;

  // Replicate the final shared tables into every Program so each one is
  // self-contained and their MemoryModel layouts coincide.
  LoweredModule M;
  for (size_t I = 0; I != Order.size(); ++I) {
    Program &FP = Funcs[I];
    FP.Vars = P.Vars;
    FP.RegGlobals = P.RegGlobals;
    FP.NumRegs = P.NumRegs;
    FP.CalleeNames = P.CalleeNames;
    if (Order[I] == Entry)
      M.Entry = std::move(FP);
    else
      M.Callees.push_back(std::move(FP));
  }
  return M;
}

std::optional<Program> specai::lowerProgram(const TranslationUnit &Unit,
                                            const LoweringOptions &Options,
                                            DiagnosticEngine &Diags) {
  Lowerer L(Unit, Options, Diags);
  return L.run();
}

std::optional<LoweredModule> specai::lowerModule(const TranslationUnit &Unit,
                                                 const LoweringOptions &Options,
                                                 DiagnosticEngine &Diags) {
  if (Options.Mode == LoweringMode::InlineUnroll) {
    auto P = lowerProgram(Unit, Options, Diags);
    if (!P)
      return std::nullopt;
    LoweredModule M;
    M.Entry = std::move(*P);
    return M;
  }
  Lowerer L(Unit, Options, Diags);
  return L.runModule();
}

const char *specai::loweringModeName(LoweringMode Mode) {
  switch (Mode) {
  case LoweringMode::InlineUnroll:
    return "inline";
  case LoweringMode::Summarize:
    return "summarize";
  }
  return "<invalid>";
}

bool specai::parseLoweringMode(const std::string &Name,
                               LoweringMode &ModeOut) {
  for (LoweringMode M : {LoweringMode::InlineUnroll, LoweringMode::Summarize}) {
    if (Name == loweringModeName(M)) {
      ModeOut = M;
      return true;
    }
  }
  return false;
}
