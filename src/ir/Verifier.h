//===- Verifier.h - IR structural validity checks ---------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#ifndef SPECAI_IR_VERIFIER_H
#define SPECAI_IR_VERIFIER_H

#include "ir/Ir.h"

#include <string>
#include <vector>

namespace specai {

/// Checks structural invariants of a lowered Program: every block ends in
/// exactly one terminator, branch targets are in range, operand kinds match
/// opcodes, register and variable indices are in bounds, and memory operand
/// indices are only present on arrays. Returns a list of violations (empty
/// means valid).
std::vector<std::string> verifyProgram(const Program &P);

} // namespace specai

#endif // SPECAI_IR_VERIFIER_H
