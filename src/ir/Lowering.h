//===- Lowering.h - AST to IR lowering --------------------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a checked mini-C translation unit into a single fully inlined
/// Program:
///
///  - Every named non-`reg` variable becomes a memory object; each use
///    loads it and each definition stores it (like LLVM allocas before
///    mem2reg), so the analysis sees the access stream the paper's tables
///    assume. `reg` variables live in virtual registers and are invisible
///    to the cache, matching the paper's Figure 2.
///  - Calls are inlined (Sema guarantees an acyclic call graph).
///  - Counted `for` loops whose induction variable is not assigned in the
///    body are fully unrolled, substituting the constant induction value
///    into the body (the paper §6.3: "loops with fixed iteration number
///    will be fully unrolled"). For a memory-resident induction variable
///    the per-iteration store is still emitted so the cache pressure of the
///    variable itself is preserved.
///  - Constant expressions fold, so unrolled preload loops produce constant
///    array indices, which the memory model maps to exact cache blocks.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_IR_LOWERING_H
#define SPECAI_IR_LOWERING_H

#include "ir/Ir.h"
#include "lang/Ast.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>
#include <vector>

namespace specai {

/// How calls and counted loops reach the analysis.
enum class LoweringMode {
  /// The paper's setup (default): calls fully inlined, counted loops fully
  /// unrolled — one flat Program, maximally precise, exponentially large.
  InlineUnroll,
  /// Interprocedural mode: every loop stays rolled (the engines widen at
  /// its header) and every call becomes a Call instruction resolved
  /// through per-function summaries. One Program per function, all sharing
  /// one memory layout and register space.
  Summarize,
};

/// Short lowercase mode name: "inline" or "summarize".
const char *loweringModeName(LoweringMode Mode);
/// Parses "inline" / "summarize"; false on anything else.
bool parseLoweringMode(const std::string &Name, LoweringMode &ModeOut);

/// Tunables for lowering.
struct LoweringOptions {
  /// Function to lower as the program entry.
  std::string EntryFunction = "main";
  /// Unrolling gives up beyond this many iterations and falls back to a
  /// widened loop, like the paper's "unresolved" loops.
  uint64_t MaxUnrollIterations = 65536;
  /// Hard cap on inlining depth (recursion is rejected by Sema; this guards
  /// against deep call chains).
  unsigned MaxInlineDepth = 64;
  /// Master switch for full loop unrolling (InlineUnroll mode only).
  bool EnableUnrolling = true;
  /// Call/loop strategy; see LoweringMode.
  LoweringMode Mode = LoweringMode::InlineUnroll;
};

/// A Summarize-mode module: the entry Program plus one Program per
/// reachable non-entry function, in bottom-up call-graph order (every
/// Callee index in any Program refers to an earlier Callees entry, so a
/// left-to-right pass sees callees before callers). All Programs share
/// identical Vars/RegGlobals/NumRegs/CalleeNames, which makes their
/// MemoryModel layouts and register files interchangeable.
struct LoweredModule {
  Program Entry;
  std::vector<Program> Callees;
};

/// Lowers \p Unit into a single Program (InlineUnroll semantics; the
/// Options' Mode is ignored). Returns nullopt and reports diagnostics on
/// failure (missing entry, inline depth exceeded, ...). \p Unit must have
/// passed Sema.
std::optional<Program> lowerProgram(const TranslationUnit &Unit,
                                    const LoweringOptions &Options,
                                    DiagnosticEngine &Diags);

/// Lowers \p Unit per Options.Mode: InlineUnroll yields a module with no
/// Callees; Summarize yields one Program per reachable function.
std::optional<LoweredModule> lowerModule(const TranslationUnit &Unit,
                                         const LoweringOptions &Options,
                                         DiagnosticEngine &Diags);

} // namespace specai

#endif // SPECAI_IR_LOWERING_H
