//===- Lowering.h - AST to IR lowering --------------------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a checked mini-C translation unit into a single fully inlined
/// Program:
///
///  - Every named non-`reg` variable becomes a memory object; each use
///    loads it and each definition stores it (like LLVM allocas before
///    mem2reg), so the analysis sees the access stream the paper's tables
///    assume. `reg` variables live in virtual registers and are invisible
///    to the cache, matching the paper's Figure 2.
///  - Calls are inlined (Sema guarantees an acyclic call graph).
///  - Counted `for` loops whose induction variable is not assigned in the
///    body are fully unrolled, substituting the constant induction value
///    into the body (the paper §6.3: "loops with fixed iteration number
///    will be fully unrolled"). For a memory-resident induction variable
///    the per-iteration store is still emitted so the cache pressure of the
///    variable itself is preserved.
///  - Constant expressions fold, so unrolled preload loops produce constant
///    array indices, which the memory model maps to exact cache blocks.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_IR_LOWERING_H
#define SPECAI_IR_LOWERING_H

#include "ir/Ir.h"
#include "lang/Ast.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>

namespace specai {

/// Tunables for lowering.
struct LoweringOptions {
  /// Function to lower as the program entry.
  std::string EntryFunction = "main";
  /// Unrolling gives up beyond this many iterations and falls back to a
  /// widened loop, like the paper's "unresolved" loops.
  uint64_t MaxUnrollIterations = 65536;
  /// Hard cap on inlining depth (recursion is rejected by Sema; this guards
  /// against deep call chains).
  unsigned MaxInlineDepth = 64;
  /// Master switch for full loop unrolling.
  bool EnableUnrolling = true;
};

/// Lowers \p Unit into a Program. Returns nullopt and reports diagnostics
/// on failure (missing entry, inline depth exceeded, ...). \p Unit must
/// have passed Sema.
std::optional<Program> lowerProgram(const TranslationUnit &Unit,
                                    const LoweringOptions &Options,
                                    DiagnosticEngine &Diags);

} // namespace specai

#endif // SPECAI_IR_LOWERING_H
