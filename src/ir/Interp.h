//===- Interp.h - Concrete IR machine ---------------------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete, single-stepping executor for lowered programs. It serves two
/// substrates: functional testing of the frontend, and the speculative CPU
/// simulator (src/pipeline), which needs instruction-level stepping,
/// register checkpoints for rollback, and a switch that suppresses store
/// commits during speculative windows (stores sit in the store buffer and
/// are squashed on misprediction, so they never touch memory or the cache).
///
/// Array indices are wrapped modulo the array length (total semantics), so
/// wild speculative indexing cannot fault.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_IR_INTERP_H
#define SPECAI_IR_INTERP_H

#include "ir/Ir.h"

#include <cstdint>
#include <string>
#include <vector>

namespace specai {

/// One dynamic memory access: which element of which variable, and where in
/// the program it happened.
struct AccessEvent {
  VarId Var = InvalidVar;
  uint64_t Element = 0;
  bool IsLoad = true;
  BlockId Block = InvalidBlock;
  uint32_t InstIndex = 0;
};

/// Concrete machine state over a Program.
class Machine {
public:
  explicit Machine(const Program &P);

  /// Overrides the initial value of a memory element (program input).
  void setMemory(VarId Var, uint64_t Element, int64_t Value);
  /// Sets every element of \p Var from \p Values (shorter vectors leave the
  /// tail untouched).
  void setMemoryAll(VarId Var, const std::vector<int64_t> &Values);
  /// Sets a `reg` global by name; returns false if no such register global.
  bool setRegGlobal(const std::string &Name, int64_t Value);

  int64_t readMemory(VarId Var, uint64_t Element) const;
  int64_t readReg(RegId Reg) const;

  bool halted() const { return Halted; }
  int64_t returnValue() const { return RetVal; }

  BlockId currentBlock() const { return CurBlock; }
  uint32_t currentInst() const { return CurInst; }
  /// The instruction that the next step() will execute. Invalid to call
  /// when halted.
  const Instruction &currentInstruction() const;

  /// Effect of one step, for simulator consumption.
  struct StepResult {
    bool DidAccess = false;
    AccessEvent Access;
    bool WasBranch = false;
    bool BranchTaken = false;
    bool DidHalt = false;
    /// Location of the executed instruction (the pre-step program
    /// counter), so per-instruction observers — the simulator's commit
    /// hook, the fuzzer's cycle-charging probe — can attribute the step
    /// to a CFG node without re-deriving the machine's position.
    BlockId Block = InvalidBlock;
    uint32_t InstIndex = 0;
  };

  /// Executes one instruction. No-op (DidHalt=true) when already halted.
  StepResult step();

  /// Runs until halt or \p MaxSteps, appending every access to \p Trace
  /// (pass nullptr to discard). Returns the number of steps executed.
  uint64_t run(uint64_t MaxSteps, std::vector<AccessEvent> *Trace = nullptr);

  /// When true, Store instructions do not modify memory (speculative store
  /// buffering); everything else behaves normally.
  void setSuppressStores(bool Suppress) { SuppressStores = Suppress; }

  /// Register-file + program-counter checkpoint for speculation rollback.
  /// Memory is deliberately not captured: non-speculative memory is only
  /// changed by committed stores, and speculative stores are suppressed.
  struct Checkpoint {
    std::vector<int64_t> Regs;
    BlockId Block;
    uint32_t Inst;
    bool Halted;
    int64_t RetVal;
  };
  Checkpoint checkpoint() const;
  void restore(const Checkpoint &C);

  /// Forces the program counter; used by the simulator to steer the machine
  /// down a predicted branch target.
  void jumpTo(BlockId Block, uint32_t Inst = 0);

private:
  int64_t evalOperand(const Operand &Op) const;
  uint64_t wrapIndex(VarId Var, int64_t Index) const;

  const Program &P;
  std::vector<int64_t> Regs;
  std::vector<std::vector<int64_t>> Memory;
  BlockId CurBlock = Program::EntryBlock;
  uint32_t CurInst = 0;
  bool Halted = false;
  bool SuppressStores = false;
  int64_t RetVal = 0;
};

} // namespace specai

#endif // SPECAI_IR_INTERP_H
