//===- Ir.h - Three-address IR for cache analysis ---------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact three-address IR. The paper's analysis operates on a CFG whose
/// instructions reference memory; our lowering keeps every named (non-`reg`)
/// variable memory resident — as an LLVM `alloca` would — so loads/stores
/// appear exactly where the paper's example tables show them, and uses
/// fresh virtual registers for temporaries.
///
/// Under the default InlineUnroll lowering a Program is a single fully
/// inlined function: Sema guarantees an acyclic call graph and the lowering
/// inlines every call, which keeps the abstract interpretation
/// intraprocedural as in the paper's evaluation. The Summarize lowering
/// instead keeps one Program per function and links call sites through the
/// Call opcode: the callee is named by an index into CalleeNames, shared by
/// every Program of the module so the interprocedural summary table can be
/// indexed uniformly.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_IR_IR_H
#define SPECAI_IR_IR_H

#include "support/SourceLoc.h"

#include <cassert>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace specai {

/// Virtual register index.
using RegId = uint32_t;
inline constexpr RegId InvalidReg = std::numeric_limits<RegId>::max();

/// Memory variable index into Program::Vars.
using VarId = uint32_t;
inline constexpr VarId InvalidVar = std::numeric_limits<VarId>::max();

/// Basic block index into Program::Blocks.
using BlockId = uint32_t;
inline constexpr BlockId InvalidBlock = std::numeric_limits<BlockId>::max();

/// A register or immediate operand (or absent).
struct Operand {
  enum class Kind : uint8_t { None, Reg, Imm };
  Kind K = Kind::None;
  RegId Reg = InvalidReg;
  int64_t Imm = 0;

  static Operand none() { return Operand(); }
  static Operand reg(RegId R) {
    Operand Op;
    Op.K = Kind::Reg;
    Op.Reg = R;
    return Op;
  }
  static Operand imm(int64_t V) {
    Operand Op;
    Op.K = Kind::Imm;
    Op.Imm = V;
    return Op;
  }

  bool isNone() const { return K == Kind::None; }
  bool isReg() const { return K == Kind::Reg; }
  bool isImm() const { return K == Kind::Imm; }

  /// Renders as "r12", "42", or "_".
  std::string str() const;
};

/// Instruction opcodes. Br is a two-way conditional branch; Jmp is
/// unconditional. Every block ends in exactly one of Br/Jmp/Ret. Call only
/// appears in Summarize-mode programs: it transfers to another Program of
/// the module and falls through to the next instruction, so it is *not* a
/// terminator — the abstract engines apply the callee's summary as a
/// single-node effect. Fence is a speculation barrier (the mitigation
/// primitive of docs/MITIGATION.md): architecturally a one-cycle no-op, but
/// a speculative window that reaches one ends there, both in the concrete
/// pipeline (SpeculativeCpu) and in the abstract engines
/// (identity transfer, speculative flows drain at the node). The lowering
/// never emits it; only the repair synthesizer inserts fences.
enum class Opcode : uint8_t { Mov, Bin, Load, Store, Br, Jmp, Ret, Call, Fence };

/// Binary ALU operations; comparisons produce 0/1.
enum class IrBinOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  And,
  Or,
  Xor,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
};

/// Printable spelling, e.g. "add".
const char *irBinOpName(IrBinOp Op);

/// Evaluates \p Op on concrete values with total semantics (division by
/// zero yields 0, shift counts are masked to 0..63) so the interpreter and
/// constant folder can never trap.
int64_t evalIrBinOp(IrBinOp Op, int64_t L, int64_t R);

/// One IR instruction.
///
/// Field usage by opcode:
///   Mov   : Dst, A
///   Bin   : Dst, BinOp, A, B
///   Load  : Dst, Var, Index (element index operand; None for scalars)
///   Store : Var, Index, A (value)
///   Br    : A (condition), TrueTarget, FalseTarget
///   Jmp   : TrueTarget
///   Ret   : A (optional value)
///   Call  : Dst (return value), Callee (index into Program::CalleeNames)
struct Instruction {
  Opcode Op = Opcode::Mov;
  IrBinOp BinOp = IrBinOp::Add;
  SourceLoc Loc;
  RegId Dst = InvalidReg;
  Operand A;
  Operand B;
  VarId Var = InvalidVar;
  Operand Index;
  BlockId TrueTarget = InvalidBlock;
  BlockId FalseTarget = InvalidBlock;
  /// Call only: which module function is invoked (Program::CalleeNames
  /// index, shared across the module's Programs).
  uint32_t Callee = 0;

  bool isTerminator() const {
    return Op == Opcode::Br || Op == Opcode::Jmp || Op == Opcode::Ret;
  }
  bool accessesMemory() const {
    return Op == Opcode::Load || Op == Opcode::Store;
  }
};

/// A memory-resident object: a scalar (NumElements == 1) or a 1-D array.
struct MemVar {
  /// Unique name, e.g. "ph" for globals or "quantl.wd" for locals.
  std::string Name;
  /// Size of one element in bytes (1/2/4/8).
  uint32_t ElemSize = 4;
  uint64_t NumElements = 1;
  /// Source-level `secret` qualifier; seeds the taint analysis.
  bool IsSecret = false;
  /// True for globals with initializers; Init holds the values (shorter
  /// lists zero-fill, as in C).
  bool HasInit = false;
  std::vector<int64_t> Init;

  uint64_t sizeInBytes() const { return NumElements * ElemSize; }
};

/// A basic block: zero or more straight-line instructions followed by a
/// terminator.
struct BasicBlock {
  std::string Name;
  std::vector<Instruction> Insts;

  const Instruction &terminator() const {
    assert(!Insts.empty() && Insts.back().isTerminator() &&
           "block has no terminator");
    return Insts.back();
  }
};

/// A `reg`-qualified source variable that lives in a virtual register and is
/// invisible to the cache (the paper's Figure 2 `reg char k`). Kept in the
/// Program so interpreters can seed input values and the taint analysis can
/// find secret registers.
struct RegGlobal {
  std::string Name;
  RegId Reg = InvalidReg;
  bool IsSecret = false;
};

/// A statically known trip count of a counted loop that the Summarize
/// lowering kept rolled: the loop headed by block \p Header executes its
/// header at most \p HeaderExecutions times (trip count + 1 exit test).
/// estimateWcet scales the loop's body by this instead of the global
/// LoopIterationBound.
struct LoopTripRecord {
  BlockId Header = InvalidBlock;
  uint64_t HeaderExecutions = 0;
};

/// A lowered program: the unit of analysis. Fully inlined and unrolled
/// under the InlineUnroll lowering; one Program per function, with rolled
/// loops and Call links, under the Summarize lowering.
class Program {
public:
  std::vector<MemVar> Vars;
  std::vector<RegGlobal> RegGlobals;
  std::vector<BasicBlock> Blocks;
  /// Number of virtual registers used.
  uint32_t NumRegs = 0;
  /// Entry block is always index 0.
  static constexpr BlockId EntryBlock = 0;
  /// Name of the source-level entry function.
  std::string EntryName;
  /// Summarize mode: names of the module's non-entry functions, in
  /// bottom-up call-graph order. Instruction::Callee indexes this table.
  /// Shared (identical) across every Program of one module; empty under
  /// InlineUnroll.
  std::vector<std::string> CalleeNames;
  /// Summarize mode: counted loops kept rolled, with their static bounds.
  std::vector<LoopTripRecord> LoopTrips;

  /// Finds a memory variable by name; InvalidVar if absent.
  VarId findVar(const std::string &Name) const;

  /// Total instruction count across all blocks.
  size_t instructionCount() const;

  /// Renders the whole program as readable text.
  std::string str() const;
};

} // namespace specai

#endif // SPECAI_IR_IR_H
