//===- Verifier.cpp -------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

using namespace specai;

std::vector<std::string> specai::verifyProgram(const Program &P) {
  std::vector<std::string> Issues;
  auto Bad = [&](BlockId B, size_t I, const std::string &Msg) {
    Issues.push_back("bb" + std::to_string(B) + ":" + std::to_string(I) +
                     ": " + Msg);
  };

  if (P.Blocks.empty()) {
    Issues.push_back("program has no blocks");
    return Issues;
  }

  auto CheckOperand = [&](BlockId B, size_t I, const Operand &Op,
                          const char *What, bool Required) {
    if (Op.isNone()) {
      if (Required)
        Bad(B, I, std::string("missing required operand: ") + What);
      return;
    }
    if (Op.isReg() && Op.Reg >= P.NumRegs)
      Bad(B, I, std::string(What) + " register out of range");
  };

  for (BlockId B = 0; B != P.Blocks.size(); ++B) {
    const BasicBlock &Block = P.Blocks[B];
    if (Block.Insts.empty()) {
      Bad(B, 0, "empty basic block");
      continue;
    }
    for (size_t I = 0; I != Block.Insts.size(); ++I) {
      const Instruction &Inst = Block.Insts[I];
      bool IsLast = I + 1 == Block.Insts.size();
      if (Inst.isTerminator() != IsLast) {
        Bad(B, I, IsLast ? "block does not end with a terminator"
                         : "terminator in the middle of a block");
      }
      switch (Inst.Op) {
      case Opcode::Mov:
        if (Inst.Dst == InvalidReg || Inst.Dst >= P.NumRegs)
          Bad(B, I, "mov destination register invalid");
        CheckOperand(B, I, Inst.A, "mov source", /*Required=*/true);
        break;
      case Opcode::Bin:
        if (Inst.Dst == InvalidReg || Inst.Dst >= P.NumRegs)
          Bad(B, I, "bin destination register invalid");
        CheckOperand(B, I, Inst.A, "bin lhs", /*Required=*/true);
        CheckOperand(B, I, Inst.B, "bin rhs", /*Required=*/true);
        break;
      case Opcode::Load:
      case Opcode::Store: {
        if (Inst.Var == InvalidVar || Inst.Var >= P.Vars.size()) {
          Bad(B, I, "memory access references invalid variable");
          break;
        }
        const MemVar &Var = P.Vars[Inst.Var];
        bool IsArray = Var.NumElements > 1;
        if (IsArray && Inst.Index.isNone())
          Bad(B, I, "array access '" + Var.Name + "' without an index");
        if (!IsArray && !Inst.Index.isNone())
          Bad(B, I, "scalar access '" + Var.Name + "' with an index");
        CheckOperand(B, I, Inst.Index, "access index", /*Required=*/false);
        if (Inst.Op == Opcode::Load) {
          if (Inst.Dst == InvalidReg || Inst.Dst >= P.NumRegs)
            Bad(B, I, "load destination register invalid");
        } else {
          CheckOperand(B, I, Inst.A, "store value", /*Required=*/true);
        }
        break;
      }
      case Opcode::Br:
        CheckOperand(B, I, Inst.A, "branch condition", /*Required=*/true);
        if (Inst.TrueTarget >= P.Blocks.size() ||
            Inst.FalseTarget >= P.Blocks.size())
          Bad(B, I, "branch target out of range");
        break;
      case Opcode::Jmp:
        if (Inst.TrueTarget >= P.Blocks.size())
          Bad(B, I, "jump target out of range");
        break;
      case Opcode::Ret:
        CheckOperand(B, I, Inst.A, "return value", /*Required=*/false);
        break;
      case Opcode::Call:
        if (Inst.Dst == InvalidReg || Inst.Dst >= P.NumRegs)
          Bad(B, I, "call destination register invalid");
        if (Inst.Callee >= P.CalleeNames.size())
          Bad(B, I, "call references unknown callee");
        break;
      case Opcode::Fence:
        // No operands; a fence is never a terminator (checked above).
        break;
      }
    }
  }

  for (const MemVar &Var : P.Vars) {
    if (Var.NumElements == 0)
      Issues.push_back("variable '" + Var.Name + "' has zero elements");
    if (Var.ElemSize != 1 && Var.ElemSize != 2 && Var.ElemSize != 4 &&
        Var.ElemSize != 8)
      Issues.push_back("variable '" + Var.Name +
                       "' has unsupported element size");
    if (Var.Init.size() > Var.NumElements)
      Issues.push_back("variable '" + Var.Name +
                       "' has more initializers than elements");
  }

  return Issues;
}
