//===- Ir.cpp -------------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "ir/Ir.h"

using namespace specai;

std::string Operand::str() const {
  switch (K) {
  case Kind::None:
    return "_";
  case Kind::Reg:
    return "r" + std::to_string(Reg);
  case Kind::Imm:
    return std::to_string(Imm);
  }
  return "<invalid>";
}

const char *specai::irBinOpName(IrBinOp Op) {
  switch (Op) {
  case IrBinOp::Add:
    return "add";
  case IrBinOp::Sub:
    return "sub";
  case IrBinOp::Mul:
    return "mul";
  case IrBinOp::Div:
    return "div";
  case IrBinOp::Rem:
    return "rem";
  case IrBinOp::Shl:
    return "shl";
  case IrBinOp::Shr:
    return "shr";
  case IrBinOp::And:
    return "and";
  case IrBinOp::Or:
    return "or";
  case IrBinOp::Xor:
    return "xor";
  case IrBinOp::Eq:
    return "eq";
  case IrBinOp::Ne:
    return "ne";
  case IrBinOp::Lt:
    return "lt";
  case IrBinOp::Le:
    return "le";
  case IrBinOp::Gt:
    return "gt";
  case IrBinOp::Ge:
    return "ge";
  }
  return "<invalid>";
}

int64_t specai::evalIrBinOp(IrBinOp Op, int64_t L, int64_t R) {
  switch (Op) {
  case IrBinOp::Add:
    return static_cast<int64_t>(static_cast<uint64_t>(L) +
                                static_cast<uint64_t>(R));
  case IrBinOp::Sub:
    return static_cast<int64_t>(static_cast<uint64_t>(L) -
                                static_cast<uint64_t>(R));
  case IrBinOp::Mul:
    return static_cast<int64_t>(static_cast<uint64_t>(L) *
                                static_cast<uint64_t>(R));
  case IrBinOp::Div:
    // Total semantics: x/0 == 0, INT_MIN/-1 == INT_MIN.
    if (R == 0)
      return 0;
    if (L == std::numeric_limits<int64_t>::min() && R == -1)
      return L;
    return L / R;
  case IrBinOp::Rem:
    if (R == 0)
      return 0;
    if (L == std::numeric_limits<int64_t>::min() && R == -1)
      return 0;
    return L % R;
  case IrBinOp::Shl:
    return static_cast<int64_t>(static_cast<uint64_t>(L)
                                << (static_cast<uint64_t>(R) & 63));
  case IrBinOp::Shr:
    return L >> (static_cast<uint64_t>(R) & 63);
  case IrBinOp::And:
    return L & R;
  case IrBinOp::Or:
    return L | R;
  case IrBinOp::Xor:
    return L ^ R;
  case IrBinOp::Eq:
    return L == R;
  case IrBinOp::Ne:
    return L != R;
  case IrBinOp::Lt:
    return L < R;
  case IrBinOp::Le:
    return L <= R;
  case IrBinOp::Gt:
    return L > R;
  case IrBinOp::Ge:
    return L >= R;
  }
  return 0;
}

VarId Program::findVar(const std::string &Name) const {
  for (VarId Id = 0; Id != Vars.size(); ++Id)
    if (Vars[Id].Name == Name)
      return Id;
  return InvalidVar;
}

size_t Program::instructionCount() const {
  size_t Count = 0;
  for (const BasicBlock &Block : Blocks)
    Count += Block.Insts.size();
  return Count;
}

static std::string renderInst(const Program &P, const Instruction &I) {
  auto MemRef = [&](const Instruction &Inst) {
    std::string Out = P.Vars[Inst.Var].Name;
    if (!Inst.Index.isNone())
      Out += "[" + Inst.Index.str() + "]";
    return Out;
  };
  switch (I.Op) {
  case Opcode::Mov:
    return "r" + std::to_string(I.Dst) + " = mov " + I.A.str();
  case Opcode::Bin:
    return "r" + std::to_string(I.Dst) + " = " + irBinOpName(I.BinOp) + " " +
           I.A.str() + ", " + I.B.str();
  case Opcode::Load:
    return "r" + std::to_string(I.Dst) + " = load " + MemRef(I);
  case Opcode::Store:
    return "store " + MemRef(I) + ", " + I.A.str();
  case Opcode::Br:
    return "br " + I.A.str() + ", bb" + std::to_string(I.TrueTarget) +
           ", bb" + std::to_string(I.FalseTarget);
  case Opcode::Jmp:
    return "jmp bb" + std::to_string(I.TrueTarget);
  case Opcode::Ret:
    return I.A.isNone() ? std::string("ret") : "ret " + I.A.str();
  case Opcode::Call:
    return "r" + std::to_string(I.Dst) + " = call " +
           (I.Callee < P.CalleeNames.size() ? P.CalleeNames[I.Callee]
                                            : "<invalid>");
  case Opcode::Fence:
    return "fence";
  }
  return "<invalid>";
}

std::string Program::str() const {
  std::string Out = "program " + EntryName + " {\n";
  for (const MemVar &Var : Vars) {
    Out += "  mem " + Var.Name + " : " + std::to_string(Var.ElemSize) +
           " x " + std::to_string(Var.NumElements);
    if (Var.IsSecret)
      Out += " secret";
    Out += '\n';
  }
  for (BlockId B = 0; B != Blocks.size(); ++B) {
    Out += "bb" + std::to_string(B);
    if (!Blocks[B].Name.empty())
      Out += " (" + Blocks[B].Name + ")";
    Out += ":\n";
    for (const Instruction &I : Blocks[B].Insts)
      Out += "  " + renderInst(*this, I) + "\n";
  }
  Out += "}\n";
  return Out;
}
