//===- Token.h - Mini-C token definitions -----------------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the mini-C lexer. The language is the subset of C
/// the paper's benchmarks exercise: integer scalars/arrays, loops, branches,
/// calls, plus two analysis qualifiers: `secret` (taint source for side
/// channel detection) and `reg` (register-allocated, not memory resident,
/// matching the paper's Figure 2 `reg char k`).
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_LANG_TOKEN_H
#define SPECAI_LANG_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace specai {

enum class TokenKind {
  Eof,
  Identifier,
  IntLiteral,

  // Type keywords.
  KwChar,
  KwShort,
  KwInt,
  KwLong,
  KwVoid,
  KwUnsigned,

  // Qualifier keywords.
  KwSecret,
  KwReg,
  KwConst,

  // Statement keywords.
  KwIf,
  KwElse,
  KwFor,
  KwWhile,
  KwDo,
  KwBreak,
  KwContinue,
  KwReturn,

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Question,
  Colon,

  // Operators.
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Less,
  Greater,
  LessEqual,
  GreaterEqual,
  EqualEqual,
  BangEqual,
  LessLess,
  GreaterGreater,
  AmpAmp,
  PipePipe,
  Equal,
  PlusEqual,
  MinusEqual,
  StarEqual,
  SlashEqual,
  PercentEqual,
  AmpEqual,
  PipeEqual,
  CaretEqual,
  LessLessEqual,
  GreaterGreaterEqual,
  PlusPlus,
  MinusMinus,
};

/// Human-readable spelling of a token kind, for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One lexed token. Identifiers carry their text; integer literals their
/// value.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;
  int64_t IntValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace specai

#endif // SPECAI_LANG_TOKEN_H
