//===- Lexer.h - Mini-C lexer -----------------------------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#ifndef SPECAI_LANG_LEXER_H
#define SPECAI_LANG_LEXER_H

#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <string_view>
#include <vector>

namespace specai {

/// Turns a mini-C source buffer into a token stream. Supports decimal, hex
/// (0x...) and character ('a') literals, line (//) and block comments.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags);

  /// Lexes the whole buffer. The returned vector always ends with an Eof
  /// token; on error, diagnostics are reported and the offending character
  /// is skipped.
  std::vector<Token> lexAll();

private:
  Token lexToken();
  Token makeToken(TokenKind Kind, SourceLoc Loc, std::string Text = "");
  void skipWhitespaceAndComments();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  SourceLoc currentLoc() const { return SourceLoc(Line, Col); }

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace specai

#endif // SPECAI_LANG_LEXER_H
