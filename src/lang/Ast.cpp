//===- Ast.cpp ------------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "lang/Ast.h"

#include <cassert>

using namespace specai;

unsigned specai::typeSizeInBytes(TypeKind Kind) {
  switch (Kind) {
  case TypeKind::Char:
    return 1;
  case TypeKind::Short:
    return 2;
  case TypeKind::Int:
    return 4;
  case TypeKind::Long:
    return 8;
  case TypeKind::Void:
    return 0;
  }
  return 0;
}

const char *specai::typeKindName(TypeKind Kind) {
  switch (Kind) {
  case TypeKind::Char:
    return "char";
  case TypeKind::Short:
    return "short";
  case TypeKind::Int:
    return "int";
  case TypeKind::Long:
    return "long";
  case TypeKind::Void:
    return "void";
  }
  return "<invalid>";
}

const char *specai::binaryOpName(BinaryOpKind Op) {
  switch (Op) {
  case BinaryOpKind::Add:
    return "+";
  case BinaryOpKind::Sub:
    return "-";
  case BinaryOpKind::Mul:
    return "*";
  case BinaryOpKind::Div:
    return "/";
  case BinaryOpKind::Rem:
    return "%";
  case BinaryOpKind::Shl:
    return "<<";
  case BinaryOpKind::Shr:
    return ">>";
  case BinaryOpKind::And:
    return "&";
  case BinaryOpKind::Or:
    return "|";
  case BinaryOpKind::Xor:
    return "^";
  case BinaryOpKind::LogAnd:
    return "&&";
  case BinaryOpKind::LogOr:
    return "||";
  case BinaryOpKind::Eq:
    return "==";
  case BinaryOpKind::Ne:
    return "!=";
  case BinaryOpKind::Lt:
    return "<";
  case BinaryOpKind::Le:
    return "<=";
  case BinaryOpKind::Gt:
    return ">";
  case BinaryOpKind::Ge:
    return ">=";
  }
  return "<invalid>";
}

FuncDecl *TranslationUnit::findFunction(const std::string &Name) const {
  for (FuncDecl *F : Functions)
    if (F->Name == Name)
      return F;
  return nullptr;
}

VarDecl *TranslationUnit::findGlobal(const std::string &Name) const {
  for (VarDecl *V : Globals)
    if (V->Name == Name)
      return V;
  return nullptr;
}

std::string specai::printExpr(const Expr *E) {
  assert(E && "printing null expression");
  switch (E->Kind) {
  case ExprKind::IntLit:
    return std::to_string(static_cast<const IntLitExpr *>(E)->Value);
  case ExprKind::VarRef:
    return static_cast<const VarRefExpr *>(E)->Name;
  case ExprKind::Index: {
    const auto *IE = static_cast<const IndexExpr *>(E);
    return printExpr(IE->Base) + "[" + printExpr(IE->Index) + "]";
  }
  case ExprKind::Unary: {
    const auto *UE = static_cast<const UnaryExpr *>(E);
    const char *Op = UE->Op == UnaryOpKind::Neg      ? "-"
                     : UE->Op == UnaryOpKind::BitNot ? "~"
                                                     : "!";
    return std::string(Op) + "(" + printExpr(UE->Operand) + ")";
  }
  case ExprKind::Binary: {
    const auto *BE = static_cast<const BinaryExpr *>(E);
    return "(" + printExpr(BE->LHS) + " " + binaryOpName(BE->Op) + " " +
           printExpr(BE->RHS) + ")";
  }
  case ExprKind::Ternary: {
    const auto *TE = static_cast<const TernaryExpr *>(E);
    return "(" + printExpr(TE->Cond) + " ? " + printExpr(TE->TrueExpr) +
           " : " + printExpr(TE->FalseExpr) + ")";
  }
  case ExprKind::Call: {
    const auto *CE = static_cast<const CallExpr *>(E);
    std::string Out = CE->Callee + "(";
    for (size_t I = 0; I != CE->Args.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += printExpr(CE->Args[I]);
    }
    return Out + ")";
  }
  }
  return "<invalid-expr>";
}

std::string specai::printStmt(const Stmt *S, unsigned Indent) {
  assert(S && "printing null statement");
  std::string Pad(Indent * 2, ' ');
  switch (S->Kind) {
  case StmtKind::Decl: {
    const auto *DS = static_cast<const DeclStmt *>(S);
    std::string Out;
    for (const VarDecl *D : DS->Decls) {
      Out += Pad;
      if (D->Type.IsSecret)
        Out += "secret ";
      if (D->Type.IsReg)
        Out += "reg ";
      Out += typeKindName(D->Type.Kind);
      Out += ' ';
      Out += D->Name;
      if (D->IsArray)
        Out += "[" + std::to_string(D->NumElements) + "]";
      if (!D->Init.empty()) {
        Out += " = ";
        if (D->IsArray) {
          Out += "{...}";
        } else {
          Out += printExpr(D->Init.front());
        }
      }
      Out += ";\n";
    }
    return Out;
  }
  case StmtKind::Assign: {
    const auto *AS = static_cast<const AssignStmt *>(S);
    return Pad + printExpr(AS->Target) + " = " + printExpr(AS->Value) + ";\n";
  }
  case StmtKind::Expr:
    return Pad + printExpr(static_cast<const ExprStmt *>(S)->E) + ";\n";
  case StmtKind::Block: {
    const auto *BS = static_cast<const BlockStmt *>(S);
    std::string Out = Pad + "{\n";
    for (const Stmt *Child : BS->Body)
      Out += printStmt(Child, Indent + 1);
    return Out + Pad + "}\n";
  }
  case StmtKind::If: {
    const auto *IS = static_cast<const IfStmt *>(S);
    std::string Out = Pad + "if (" + printExpr(IS->Cond) + ")\n";
    Out += printStmt(IS->Then, Indent + 1);
    if (IS->Else) {
      Out += Pad + "else\n";
      Out += printStmt(IS->Else, Indent + 1);
    }
    return Out;
  }
  case StmtKind::For: {
    const auto *FS = static_cast<const ForStmt *>(S);
    std::string Out = Pad + "for (...; " +
                      (FS->Cond ? printExpr(FS->Cond) : std::string()) +
                      "; ...)\n";
    return Out + printStmt(FS->Body, Indent + 1);
  }
  case StmtKind::While: {
    const auto *WS = static_cast<const WhileStmt *>(S);
    return Pad + "while (" + printExpr(WS->Cond) + ")\n" +
           printStmt(WS->Body, Indent + 1);
  }
  case StmtKind::DoWhile: {
    const auto *DS = static_cast<const DoWhileStmt *>(S);
    return Pad + "do\n" + printStmt(DS->Body, Indent + 1) + Pad + "while (" +
           printExpr(DS->Cond) + ");\n";
  }
  case StmtKind::Break:
    return Pad + "break;\n";
  case StmtKind::Continue:
    return Pad + "continue;\n";
  case StmtKind::Return: {
    const auto *RS = static_cast<const ReturnStmt *>(S);
    if (RS->Value)
      return Pad + "return " + printExpr(RS->Value) + ";\n";
    return Pad + "return;\n";
  }
  }
  return Pad + "<invalid-stmt>\n";
}
