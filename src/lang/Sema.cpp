//===- Sema.cpp -----------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include <algorithm>
#include <cassert>

using namespace specai;

std::optional<int64_t> specai::evaluateConstExpr(const Expr *E) {
  if (!E)
    return std::nullopt;
  switch (E->Kind) {
  case ExprKind::IntLit:
    return static_cast<const IntLitExpr *>(E)->Value;
  case ExprKind::Unary: {
    const auto *UE = static_cast<const UnaryExpr *>(E);
    auto V = evaluateConstExpr(UE->Operand);
    if (!V)
      return std::nullopt;
    switch (UE->Op) {
    case UnaryOpKind::Neg:
      return -*V;
    case UnaryOpKind::BitNot:
      return ~*V;
    case UnaryOpKind::LogNot:
      return *V == 0 ? 1 : 0;
    }
    return std::nullopt;
  }
  case ExprKind::Binary: {
    const auto *BE = static_cast<const BinaryExpr *>(E);
    auto L = evaluateConstExpr(BE->LHS);
    if (!L)
      return std::nullopt;
    // Short-circuit operators may be constant even with a non-constant RHS.
    if (BE->Op == BinaryOpKind::LogAnd && *L == 0)
      return 0;
    if (BE->Op == BinaryOpKind::LogOr && *L != 0)
      return 1;
    auto R = evaluateConstExpr(BE->RHS);
    if (!R)
      return std::nullopt;
    switch (BE->Op) {
    case BinaryOpKind::Add:
      return *L + *R;
    case BinaryOpKind::Sub:
      return *L - *R;
    case BinaryOpKind::Mul:
      return *L * *R;
    case BinaryOpKind::Div:
      if (*R == 0)
        return std::nullopt;
      return *L / *R;
    case BinaryOpKind::Rem:
      if (*R == 0)
        return std::nullopt;
      return *L % *R;
    case BinaryOpKind::Shl:
      if (*R < 0 || *R >= 64)
        return std::nullopt;
      return static_cast<int64_t>(static_cast<uint64_t>(*L) << *R);
    case BinaryOpKind::Shr:
      if (*R < 0 || *R >= 64)
        return std::nullopt;
      return *L >> *R;
    case BinaryOpKind::And:
      return *L & *R;
    case BinaryOpKind::Or:
      return *L | *R;
    case BinaryOpKind::Xor:
      return *L ^ *R;
    case BinaryOpKind::LogAnd:
      return (*L != 0 && *R != 0) ? 1 : 0;
    case BinaryOpKind::LogOr:
      return (*L != 0 || *R != 0) ? 1 : 0;
    case BinaryOpKind::Eq:
      return *L == *R ? 1 : 0;
    case BinaryOpKind::Ne:
      return *L != *R ? 1 : 0;
    case BinaryOpKind::Lt:
      return *L < *R ? 1 : 0;
    case BinaryOpKind::Le:
      return *L <= *R ? 1 : 0;
    case BinaryOpKind::Gt:
      return *L > *R ? 1 : 0;
    case BinaryOpKind::Ge:
      return *L >= *R ? 1 : 0;
    }
    return std::nullopt;
  }
  case ExprKind::Ternary: {
    const auto *TE = static_cast<const TernaryExpr *>(E);
    auto C = evaluateConstExpr(TE->Cond);
    if (!C)
      return std::nullopt;
    return evaluateConstExpr(*C != 0 ? TE->TrueExpr : TE->FalseExpr);
  }
  case ExprKind::VarRef:
  case ExprKind::Index:
  case ExprKind::Call:
    return std::nullopt;
  }
  return std::nullopt;
}

void Sema::pushScope() { Scopes.emplace_back(); }

void Sema::popScope() {
  assert(!Scopes.empty() && "scope stack underflow");
  Scopes.pop_back();
}

void Sema::declare(VarDecl *Decl) {
  assert(!Scopes.empty() && "no active scope");
  auto &Scope = Scopes.back();
  auto [It, Inserted] = Scope.emplace(Decl->Name, Decl);
  if (!Inserted) {
    Diags.error(Decl->Loc, "redeclaration of '" + Decl->Name + "'");
    Diags.note(It->second->Loc, "previous declaration is here");
    return;
  }
  Decl->DeclId = NextDeclId++;
  if (CurrentFunction && !Decl->IsGlobal)
    CurrentFunction->Locals.push_back(Decl);
}

VarDecl *Sema::lookup(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return nullptr;
}

void Sema::checkVarDecl(VarDecl *Decl, bool IsLocal) {
  if (Decl->Type.Kind == TypeKind::Void) {
    Diags.error(Decl->Loc, "variable '" + Decl->Name + "' has void type");
    Decl->Type.Kind = TypeKind::Int;
  }

  if (Decl->IsArray) {
    auto Size = evaluateConstExpr(Decl->SizeExpr);
    if (!Size || *Size <= 0) {
      Diags.error(Decl->Loc,
                  "array '" + Decl->Name + "' needs a positive constant size");
      Decl->NumElements = 1;
    } else {
      Decl->NumElements = static_cast<uint64_t>(*Size);
    }
    if (Decl->Type.IsReg)
      Diags.error(Decl->Loc, "arrays cannot be 'reg' qualified");
    if (Decl->Init.size() > Decl->NumElements)
      Diags.error(Decl->Loc, "too many initializers for '" + Decl->Name + "'");
  } else if (Decl->Init.size() > 1) {
    Diags.error(Decl->Loc, "scalar '" + Decl->Name +
                               "' initialized with a brace list");
  }

  for (Expr *Init : Decl->Init) {
    if (!Init)
      continue;
    if (Decl->IsGlobal) {
      // Global initializers must be constant so the interpreter and memory
      // model can materialize them without running code.
      if (!evaluateConstExpr(Init))
        Diags.error(Init->Loc, "global initializer for '" + Decl->Name +
                                   "' is not a constant expression");
      continue;
    }
    checkExpr(Init, /*AsValue=*/true);
  }

  declare(Decl);
  (void)IsLocal;
}

void Sema::checkLValue(Expr *E) {
  if (!E)
    return;
  if (E->Kind == ExprKind::VarRef) {
    auto *Ref = static_cast<VarRefExpr *>(E);
    checkExpr(Ref, /*AsValue=*/false);
    if (Ref->Decl) {
      if (Ref->Decl->IsArray)
        Diags.error(E->Loc,
                    "cannot assign to array '" + Ref->Name + "' as a whole");
      if (Ref->Decl->Type.IsConst)
        Diags.error(E->Loc, "cannot assign to const '" + Ref->Name + "'");
    }
    return;
  }
  if (E->Kind == ExprKind::Index) {
    auto *IE = static_cast<IndexExpr *>(E);
    checkExpr(IE, /*AsValue=*/false);
    if (IE->Base->Decl && IE->Base->Decl->Type.IsConst)
      Diags.error(E->Loc,
                  "cannot assign to element of const '" + IE->Base->Name +
                      "'");
    return;
  }
  Diags.error(E->Loc, "assignment target is not an lvalue");
}

void Sema::checkExpr(Expr *E, bool AsValue) {
  if (!E)
    return;
  switch (E->Kind) {
  case ExprKind::IntLit:
    return;
  case ExprKind::VarRef: {
    auto *Ref = static_cast<VarRefExpr *>(E);
    Ref->Decl = lookup(Ref->Name);
    if (!Ref->Decl) {
      Diags.error(E->Loc, "use of undeclared identifier '" + Ref->Name + "'");
      return;
    }
    if (AsValue && Ref->Decl->IsArray)
      Diags.error(E->Loc, "array '" + Ref->Name +
                              "' must be subscripted to produce a value");
    return;
  }
  case ExprKind::Index: {
    auto *IE = static_cast<IndexExpr *>(E);
    IE->Base->Decl = lookup(IE->Base->Name);
    if (!IE->Base->Decl) {
      Diags.error(E->Loc,
                  "use of undeclared identifier '" + IE->Base->Name + "'");
    } else if (!IE->Base->Decl->IsArray) {
      Diags.error(E->Loc, "subscripted variable '" + IE->Base->Name +
                              "' is not an array");
    } else if (auto Idx = evaluateConstExpr(IE->Index)) {
      if (*Idx < 0 ||
          static_cast<uint64_t>(*Idx) >= IE->Base->Decl->NumElements)
        Diags.warning(E->Loc, "constant index " + std::to_string(*Idx) +
                                  " is out of bounds for '" + IE->Base->Name +
                                  "' (" +
                                  std::to_string(IE->Base->Decl->NumElements) +
                                  " elements)");
    }
    checkExpr(IE->Index, /*AsValue=*/true);
    return;
  }
  case ExprKind::Unary:
    checkExpr(static_cast<UnaryExpr *>(E)->Operand, /*AsValue=*/true);
    return;
  case ExprKind::Binary: {
    auto *BE = static_cast<BinaryExpr *>(E);
    checkExpr(BE->LHS, /*AsValue=*/true);
    checkExpr(BE->RHS, /*AsValue=*/true);
    return;
  }
  case ExprKind::Ternary: {
    auto *TE = static_cast<TernaryExpr *>(E);
    checkExpr(TE->Cond, /*AsValue=*/true);
    checkExpr(TE->TrueExpr, /*AsValue=*/true);
    checkExpr(TE->FalseExpr, /*AsValue=*/true);
    return;
  }
  case ExprKind::Call: {
    auto *CE = static_cast<CallExpr *>(E);
    CE->Decl = Unit->findFunction(CE->Callee);
    if (!CE->Decl) {
      Diags.error(E->Loc, "call to undeclared function '" + CE->Callee + "'");
      return;
    }
    if (CE->Args.size() != CE->Decl->Params.size())
      Diags.error(E->Loc,
                  "call to '" + CE->Callee + "' expects " +
                      std::to_string(CE->Decl->Params.size()) +
                      " arguments, got " + std::to_string(CE->Args.size()));
    if (AsValue && CE->Decl->ReturnType.Kind == TypeKind::Void)
      Diags.error(E->Loc, "void function '" + CE->Callee +
                              "' used where a value is required");
    for (Expr *Arg : CE->Args)
      checkExpr(Arg, /*AsValue=*/true);
    if (CurrentFunction && CE->Decl) {
      auto &Callees = CurrentFunction->Callees;
      if (std::find(Callees.begin(), Callees.end(), CE->Decl) == Callees.end())
        Callees.push_back(CE->Decl);
    }
    return;
  }
  }
}

void Sema::checkStmt(Stmt *S) {
  if (!S)
    return;
  switch (S->Kind) {
  case StmtKind::Decl:
    for (VarDecl *Decl : static_cast<DeclStmt *>(S)->Decls)
      checkVarDecl(Decl, /*IsLocal=*/true);
    return;
  case StmtKind::Assign: {
    auto *AS = static_cast<AssignStmt *>(S);
    checkLValue(AS->Target);
    checkExpr(AS->Value, /*AsValue=*/true);
    return;
  }
  case StmtKind::Expr:
    checkExpr(static_cast<ExprStmt *>(S)->E, /*AsValue=*/false);
    return;
  case StmtKind::Block: {
    pushScope();
    for (Stmt *Child : static_cast<BlockStmt *>(S)->Body)
      checkStmt(Child);
    popScope();
    return;
  }
  case StmtKind::If: {
    auto *IS = static_cast<IfStmt *>(S);
    checkExpr(IS->Cond, /*AsValue=*/true);
    checkStmt(IS->Then);
    checkStmt(IS->Else);
    return;
  }
  case StmtKind::For: {
    auto *FS = static_cast<ForStmt *>(S);
    pushScope(); // For-init declarations scope over the whole loop.
    checkStmt(FS->Init);
    if (FS->Cond)
      checkExpr(FS->Cond, /*AsValue=*/true);
    ++LoopDepth;
    checkStmt(FS->Body);
    --LoopDepth;
    checkStmt(FS->Step);
    popScope();
    return;
  }
  case StmtKind::While: {
    auto *WS = static_cast<WhileStmt *>(S);
    checkExpr(WS->Cond, /*AsValue=*/true);
    ++LoopDepth;
    checkStmt(WS->Body);
    --LoopDepth;
    return;
  }
  case StmtKind::DoWhile: {
    auto *DS = static_cast<DoWhileStmt *>(S);
    ++LoopDepth;
    checkStmt(DS->Body);
    --LoopDepth;
    checkExpr(DS->Cond, /*AsValue=*/true);
    return;
  }
  case StmtKind::Break:
    if (LoopDepth == 0)
      Diags.error(S->Loc, "'break' outside of a loop");
    return;
  case StmtKind::Continue:
    if (LoopDepth == 0)
      Diags.error(S->Loc, "'continue' outside of a loop");
    return;
  case StmtKind::Return: {
    auto *RS = static_cast<ReturnStmt *>(S);
    bool WantsValue =
        CurrentFunction && CurrentFunction->ReturnType.Kind != TypeKind::Void;
    if (WantsValue && !RS->Value)
      Diags.error(S->Loc, "non-void function must return a value");
    if (!WantsValue && RS->Value)
      Diags.error(S->Loc, "void function cannot return a value");
    if (RS->Value)
      checkExpr(RS->Value, /*AsValue=*/true);
    return;
  }
  }
}

void Sema::checkFunction(FuncDecl *Func) {
  CurrentFunction = Func;
  LoopDepth = 0;
  pushScope();
  for (VarDecl *Param : Func->Params) {
    if (Param->Type.Kind == TypeKind::Void) {
      Diags.error(Param->Loc, "parameter '" + Param->Name + "' has void type");
      Param->Type.Kind = TypeKind::Int;
    }
    declare(Param);
  }
  checkStmt(Func->Body);
  popScope();
  CurrentFunction = nullptr;
}

bool Sema::checkNoRecursion() {
  // Colored DFS over the callee graph; any back edge is (mutual) recursion.
  enum class Color { White, Gray, Black };
  std::unordered_map<FuncDecl *, Color> Colors;
  bool Ok = true;

  // Iterative DFS to avoid deep native recursion on adversarial inputs.
  for (FuncDecl *Root : Unit->Functions) {
    if (Colors[Root] != Color::White)
      continue;
    std::vector<std::pair<FuncDecl *, size_t>> Stack;
    Stack.push_back({Root, 0});
    Colors[Root] = Color::Gray;
    while (!Stack.empty()) {
      auto &[Func, NextChild] = Stack.back();
      if (NextChild == Func->Callees.size()) {
        Colors[Func] = Color::Black;
        Stack.pop_back();
        continue;
      }
      FuncDecl *Callee = Func->Callees[NextChild++];
      if (Colors[Callee] == Color::Gray) {
        Diags.error(Func->Loc, "recursive call cycle involving '" +
                                   Func->Name + "' and '" + Callee->Name +
                                   "' (recursion is not supported)");
        Ok = false;
        continue;
      }
      if (Colors[Callee] == Color::White) {
        Colors[Callee] = Color::Gray;
        Stack.push_back({Callee, 0});
      }
    }
  }
  return Ok;
}

bool Sema::run(TranslationUnit &Unit) {
  this->Unit = &Unit;
  Scopes.clear();
  NextDeclId = 0;
  pushScope(); // Global scope.

  // Duplicate function names.
  {
    std::unordered_map<std::string, FuncDecl *> Seen;
    for (FuncDecl *Func : Unit.Functions) {
      auto [It, Inserted] = Seen.emplace(Func->Name, Func);
      if (!Inserted) {
        Diags.error(Func->Loc, "redefinition of function '" + Func->Name +
                                   "'");
        Diags.note(It->second->Loc, "previous definition is here");
      }
    }
  }

  for (VarDecl *Global : Unit.Globals)
    checkVarDecl(Global, /*IsLocal=*/false);
  for (FuncDecl *Func : Unit.Functions)
    checkFunction(Func);

  checkNoRecursion();

  popScope();
  this->Unit = nullptr;
  return !Diags.hasErrors();
}
