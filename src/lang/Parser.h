//===- Parser.h - Mini-C recursive descent parser ---------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#ifndef SPECAI_LANG_PARSER_H
#define SPECAI_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <vector>

namespace specai {

/// Recursive-descent parser for mini-C. Compound assignments (`+=` etc.) and
/// `++`/`--` statements are desugared into plain assignments during parsing,
/// so later phases only see canonical AST forms.
class Parser {
public:
  Parser(std::vector<Token> Tokens, AstContext &Context,
         DiagnosticEngine &Diags);

  /// Parses a whole translation unit. On error, diagnostics are reported and
  /// the best-effort partial unit is returned; callers must check
  /// Diags.hasErrors().
  TranslationUnit parseTranslationUnit();

private:
  // Token stream helpers.
  const Token &peek(unsigned Ahead = 0) const;
  const Token &current() const { return peek(0); }
  Token advance();
  bool check(TokenKind Kind) const { return current().is(Kind); }
  bool match(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void synchronizeToSemi();

  // Declarations.
  bool parseQualifiersAndType(QualType &Type, bool &SawAny);
  std::vector<VarDecl *> parseVarDeclarators(QualType Type, bool IsGlobal,
                                             FuncDecl *Parent);
  FuncDecl *parseFunction(QualType ReturnType, std::string Name,
                          SourceLoc Loc);

  // Statements.
  Stmt *parseStmt();
  Stmt *parseBlock();
  Stmt *parseIf();
  Stmt *parseFor();
  Stmt *parseWhile();
  Stmt *parseDoWhile();
  Stmt *parseReturn();
  /// Parses `lvalue = expr`, `lvalue op= expr`, `lvalue++/--`, or a call;
  /// \p ConsumeSemi controls whether the trailing ';' is required (false in
  /// for-headers).
  Stmt *parseExprOrAssign(bool ConsumeSemi);

  // Expressions (precedence climbing).
  Expr *parseExpr();
  Expr *parseTernary();
  Expr *parseBinary(int MinPrec);
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();

  /// Builds a structurally fresh copy of an lvalue for compound-assignment
  /// desugaring (`x += e` becomes `x = x + e`).
  Expr *rebuildLValue(Expr *LValue);

  FuncDecl *CurrentFunction = nullptr;
  std::vector<Token> Tokens;
  size_t Pos = 0;
  AstContext &Context;
  DiagnosticEngine &Diags;
};

} // namespace specai

#endif // SPECAI_LANG_PARSER_H
