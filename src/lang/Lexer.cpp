//===- Lexer.cpp ----------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace specai;

const char *specai::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwChar:
    return "'char'";
  case TokenKind::KwShort:
    return "'short'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwLong:
    return "'long'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwUnsigned:
    return "'unsigned'";
  case TokenKind::KwSecret:
    return "'secret'";
  case TokenKind::KwReg:
    return "'reg'";
  case TokenKind::KwConst:
    return "'const'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::Tilde:
    return "'~'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::BangEqual:
    return "'!='";
  case TokenKind::LessLess:
    return "'<<'";
  case TokenKind::GreaterGreater:
    return "'>>'";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::PlusEqual:
    return "'+='";
  case TokenKind::MinusEqual:
    return "'-='";
  case TokenKind::StarEqual:
    return "'*='";
  case TokenKind::SlashEqual:
    return "'/='";
  case TokenKind::PercentEqual:
    return "'%='";
  case TokenKind::AmpEqual:
    return "'&='";
  case TokenKind::PipeEqual:
    return "'|='";
  case TokenKind::CaretEqual:
    return "'^='";
  case TokenKind::LessLessEqual:
    return "'<<='";
  case TokenKind::GreaterGreaterEqual:
    return "'>>='";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::MinusMinus:
    return "'--'";
  }
  return "<invalid token>";
}

static const std::unordered_map<std::string_view, TokenKind> &keywordMap() {
  static const std::unordered_map<std::string_view, TokenKind> Map = {
      {"char", TokenKind::KwChar},         {"short", TokenKind::KwShort},
      {"int", TokenKind::KwInt},           {"long", TokenKind::KwLong},
      {"void", TokenKind::KwVoid},         {"unsigned", TokenKind::KwUnsigned},
      {"secret", TokenKind::KwSecret},     {"reg", TokenKind::KwReg},
      {"register", TokenKind::KwReg},      {"const", TokenKind::KwConst},
      {"if", TokenKind::KwIf},             {"else", TokenKind::KwElse},
      {"for", TokenKind::KwFor},           {"while", TokenKind::KwWhile},
      {"do", TokenKind::KwDo},             {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue}, {"return", TokenKind::KwReturn},
  };
  return Map;
}

Lexer::Lexer(std::string_view Source, DiagnosticEngine &Diags)
    : Source(Source), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  if (Pos + Ahead >= Source.size())
    return '\0';
  return Source[Pos + Ahead];
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  while (Pos < Source.size()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = currentLoc();
      advance();
      advance();
      bool Closed = false;
      while (Pos < Source.size()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc, std::string Text) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexToken() {
  skipWhitespaceAndComments();
  SourceLoc Loc = currentLoc();
  if (Pos >= Source.size())
    return makeToken(TokenKind::Eof, Loc);

  char C = advance();

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text(1, C);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Text += advance();
    auto It = keywordMap().find(Text);
    if (It != keywordMap().end())
      return makeToken(It->second, Loc, Text);
    return makeToken(TokenKind::Identifier, Loc, Text);
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    int64_t Value = 0;
    if (C == '0' && (peek() == 'x' || peek() == 'X')) {
      advance();
      bool HasDigit = false;
      while (std::isxdigit(static_cast<unsigned char>(peek()))) {
        char D = advance();
        int Nibble = std::isdigit(static_cast<unsigned char>(D))
                         ? D - '0'
                         : std::tolower(D) - 'a' + 10;
        Value = Value * 16 + Nibble;
        HasDigit = true;
      }
      if (!HasDigit)
        Diags.error(Loc, "hexadecimal literal has no digits");
    } else {
      Value = C - '0';
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Value = Value * 10 + (advance() - '0');
    }
    // Consume C integer suffixes (L, U, UL, ...) so real C snippets lex.
    while (peek() == 'l' || peek() == 'L' || peek() == 'u' || peek() == 'U')
      advance();
    Token T = makeToken(TokenKind::IntLiteral, Loc);
    T.IntValue = Value;
    return T;
  }

  if (C == '\'') {
    int64_t Value = 0;
    if (peek() == '\\') {
      advance();
      char Esc = advance();
      switch (Esc) {
      case 'n':
        Value = '\n';
        break;
      case 't':
        Value = '\t';
        break;
      case '0':
        Value = 0;
        break;
      case '\\':
        Value = '\\';
        break;
      case '\'':
        Value = '\'';
        break;
      default:
        Diags.error(Loc, "unknown escape sequence in character literal");
      }
    } else {
      Value = static_cast<unsigned char>(advance());
    }
    if (!match('\''))
      Diags.error(Loc, "unterminated character literal");
    Token T = makeToken(TokenKind::IntLiteral, Loc);
    T.IntValue = Value;
    return T;
  }

  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Loc);
  case ')':
    return makeToken(TokenKind::RParen, Loc);
  case '{':
    return makeToken(TokenKind::LBrace, Loc);
  case '}':
    return makeToken(TokenKind::RBrace, Loc);
  case '[':
    return makeToken(TokenKind::LBracket, Loc);
  case ']':
    return makeToken(TokenKind::RBracket, Loc);
  case ';':
    return makeToken(TokenKind::Semi, Loc);
  case ',':
    return makeToken(TokenKind::Comma, Loc);
  case '?':
    return makeToken(TokenKind::Question, Loc);
  case ':':
    return makeToken(TokenKind::Colon, Loc);
  case '~':
    return makeToken(TokenKind::Tilde, Loc);
  case '+':
    if (match('+'))
      return makeToken(TokenKind::PlusPlus, Loc);
    if (match('='))
      return makeToken(TokenKind::PlusEqual, Loc);
    return makeToken(TokenKind::Plus, Loc);
  case '-':
    if (match('-'))
      return makeToken(TokenKind::MinusMinus, Loc);
    if (match('='))
      return makeToken(TokenKind::MinusEqual, Loc);
    return makeToken(TokenKind::Minus, Loc);
  case '*':
    if (match('='))
      return makeToken(TokenKind::StarEqual, Loc);
    return makeToken(TokenKind::Star, Loc);
  case '/':
    if (match('='))
      return makeToken(TokenKind::SlashEqual, Loc);
    return makeToken(TokenKind::Slash, Loc);
  case '%':
    if (match('='))
      return makeToken(TokenKind::PercentEqual, Loc);
    return makeToken(TokenKind::Percent, Loc);
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp, Loc);
    if (match('='))
      return makeToken(TokenKind::AmpEqual, Loc);
    return makeToken(TokenKind::Amp, Loc);
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe, Loc);
    if (match('='))
      return makeToken(TokenKind::PipeEqual, Loc);
    return makeToken(TokenKind::Pipe, Loc);
  case '^':
    if (match('='))
      return makeToken(TokenKind::CaretEqual, Loc);
    return makeToken(TokenKind::Caret, Loc);
  case '!':
    if (match('='))
      return makeToken(TokenKind::BangEqual, Loc);
    return makeToken(TokenKind::Bang, Loc);
  case '=':
    if (match('='))
      return makeToken(TokenKind::EqualEqual, Loc);
    return makeToken(TokenKind::Equal, Loc);
  case '<':
    if (match('<')) {
      if (match('='))
        return makeToken(TokenKind::LessLessEqual, Loc);
      return makeToken(TokenKind::LessLess, Loc);
    }
    if (match('='))
      return makeToken(TokenKind::LessEqual, Loc);
    return makeToken(TokenKind::Less, Loc);
  case '>':
    if (match('>')) {
      if (match('='))
        return makeToken(TokenKind::GreaterGreaterEqual, Loc);
      return makeToken(TokenKind::GreaterGreater, Loc);
    }
    if (match('='))
      return makeToken(TokenKind::GreaterEqual, Loc);
    return makeToken(TokenKind::Greater, Loc);
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return lexToken();
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token T = lexToken();
    bool IsEof = T.is(TokenKind::Eof);
    Tokens.push_back(std::move(T));
    if (IsEof)
      return Tokens;
  }
}
