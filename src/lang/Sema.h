//===- Sema.h - Mini-C semantic analysis ------------------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and semantic checks for mini-C. After a successful run:
///  - every VarRefExpr::Decl and CallExpr::Decl is resolved,
///  - every VarDecl has a unique DeclId and folded NumElements,
///  - every FuncDecl lists its Locals and Callees,
///  - the call graph is verified acyclic (the lowering inlines all calls).
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_LANG_SEMA_H
#define SPECAI_LANG_SEMA_H

#include "lang/Ast.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace specai {

/// Attempts to evaluate \p E as a compile-time integer constant (literals,
/// unary/binary/ternary operators over constants). Returns nullopt when the
/// expression is not constant or hits undefined arithmetic (division by
/// zero, out-of-range shifts).
std::optional<int64_t> evaluateConstExpr(const Expr *E);

/// Semantic analyzer; run once per translation unit.
class Sema {
public:
  explicit Sema(DiagnosticEngine &Diags) : Diags(Diags) {}

  /// Runs all checks on \p Unit. Returns true iff no errors were reported.
  bool run(TranslationUnit &Unit);

private:
  void declare(VarDecl *Decl);
  VarDecl *lookup(const std::string &Name) const;
  void pushScope();
  void popScope();

  void checkVarDecl(VarDecl *Decl, bool IsLocal);
  void checkFunction(FuncDecl *Func);
  void checkStmt(Stmt *S);
  void checkExpr(Expr *E, bool AsValue);
  void checkLValue(Expr *E);
  bool checkNoRecursion();

  DiagnosticEngine &Diags;
  TranslationUnit *Unit = nullptr;
  FuncDecl *CurrentFunction = nullptr;
  unsigned LoopDepth = 0;
  unsigned NextDeclId = 0;
  std::vector<std::unordered_map<std::string, VarDecl *>> Scopes;
};

} // namespace specai

#endif // SPECAI_LANG_SEMA_H
