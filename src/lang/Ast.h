//===- Ast.h - Mini-C abstract syntax tree ----------------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the mini-C language. All nodes are owned by an AstContext; node
/// cross references are raw non-owning pointers. The tree is deliberately
/// simple: a single integer value category (64-bit signed), scalars and
/// one-dimensional arrays, and structured control flow.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_LANG_AST_H
#define SPECAI_LANG_AST_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace specai {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// Scalar element types. Only the byte width matters for the cache model;
/// arithmetic is uniformly 64-bit signed.
enum class TypeKind { Char, Short, Int, Long, Void };

/// Size in bytes of one element of the given type (Void = 0).
unsigned typeSizeInBytes(TypeKind Kind);

/// Printable spelling, e.g. "int".
const char *typeKindName(TypeKind Kind);

/// A type with the analysis-relevant qualifiers.
struct QualType {
  TypeKind Kind = TypeKind::Int;
  /// Secret data (taint source) for side channel detection, paper §2.2.
  bool IsSecret = false;
  /// Register-allocated: never memory resident, invisible to the cache.
  bool IsReg = false;
  bool IsConst = false;
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct Expr;
struct Stmt;
struct FuncDecl;

/// A scalar or array variable declaration (global, local, or parameter).
struct VarDecl {
  std::string Name;
  QualType Type;
  SourceLoc Loc;
  /// Element count; 1 for scalars.
  uint64_t NumElements = 1;
  bool IsArray = false;
  bool IsGlobal = false;
  bool IsParam = false;
  /// Owning function, null for globals. Used to build unique memory names.
  FuncDecl *Parent = nullptr;
  /// Optional initializer expressions (one for scalars, up to NumElements
  /// for arrays; shorter lists zero-fill the rest, as in C).
  std::vector<Expr *> Init;
  /// Array size expression as written; Sema constant-folds it into
  /// NumElements. Null for scalars.
  Expr *SizeExpr = nullptr;
  /// Unique id assigned by Sema, stable across the whole translation unit.
  unsigned DeclId = 0;

  /// The size of the whole object in bytes.
  uint64_t sizeInBytes() const {
    return NumElements * typeSizeInBytes(Type.Kind);
  }
};

/// A function definition.
struct FuncDecl {
  std::string Name;
  QualType ReturnType;
  SourceLoc Loc;
  std::vector<VarDecl *> Params;
  Stmt *Body = nullptr; // Always a BlockStmt.
  /// All local declarations (including params), collected by Sema.
  std::vector<VarDecl *> Locals;
  /// Functions this one calls, collected by Sema (for recursion checks).
  std::vector<FuncDecl *> Callees;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind { IntLit, VarRef, Index, Unary, Binary, Ternary, Call };

enum class UnaryOpKind { Neg, BitNot, LogNot };

enum class BinaryOpKind {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  And,
  Or,
  Xor,
  LogAnd,
  LogOr,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
};

/// Printable spelling, e.g. "+".
const char *binaryOpName(BinaryOpKind Op);

struct Expr {
  ExprKind Kind;
  SourceLoc Loc;

  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
};

struct IntLitExpr : Expr {
  int64_t Value;
  IntLitExpr(int64_t Value, SourceLoc Loc)
      : Expr(ExprKind::IntLit, Loc), Value(Value) {}
};

struct VarRefExpr : Expr {
  std::string Name;
  /// Resolved by Sema.
  VarDecl *Decl = nullptr;
  VarRefExpr(std::string Name, SourceLoc Loc)
      : Expr(ExprKind::VarRef, Loc), Name(std::move(Name)) {}
};

/// Array subscript `base[index]`. The base is always a direct VarRef.
struct IndexExpr : Expr {
  VarRefExpr *Base;
  Expr *Index;
  IndexExpr(VarRefExpr *Base, Expr *Index, SourceLoc Loc)
      : Expr(ExprKind::Index, Loc), Base(Base), Index(Index) {}
};

struct UnaryExpr : Expr {
  UnaryOpKind Op;
  Expr *Operand;
  UnaryExpr(UnaryOpKind Op, Expr *Operand, SourceLoc Loc)
      : Expr(ExprKind::Unary, Loc), Op(Op), Operand(Operand) {}
};

struct BinaryExpr : Expr {
  BinaryOpKind Op;
  Expr *LHS;
  Expr *RHS;
  BinaryExpr(BinaryOpKind Op, Expr *LHS, Expr *RHS, SourceLoc Loc)
      : Expr(ExprKind::Binary, Loc), Op(Op), LHS(LHS), RHS(RHS) {}
};

struct TernaryExpr : Expr {
  Expr *Cond;
  Expr *TrueExpr;
  Expr *FalseExpr;
  TernaryExpr(Expr *Cond, Expr *TrueExpr, Expr *FalseExpr, SourceLoc Loc)
      : Expr(ExprKind::Ternary, Loc), Cond(Cond), TrueExpr(TrueExpr),
        FalseExpr(FalseExpr) {}
};

struct CallExpr : Expr {
  std::string Callee;
  /// Resolved by Sema.
  FuncDecl *Decl = nullptr;
  std::vector<Expr *> Args;
  CallExpr(std::string Callee, std::vector<Expr *> Args, SourceLoc Loc)
      : Expr(ExprKind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind {
  Decl,
  Assign,
  Expr,
  Block,
  If,
  For,
  While,
  DoWhile,
  Break,
  Continue,
  Return,
};

struct Stmt {
  StmtKind Kind;
  SourceLoc Loc;
  Stmt(StmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
};

struct DeclStmt : Stmt {
  std::vector<VarDecl *> Decls;
  DeclStmt(std::vector<VarDecl *> Decls, SourceLoc Loc)
      : Stmt(StmtKind::Decl, Loc), Decls(std::move(Decls)) {}
};

/// `target = value;`. Compound assignments and ++/-- are desugared by the
/// parser into plain assignments.
struct AssignStmt : Stmt {
  Expr *Target; // VarRefExpr or IndexExpr.
  Expr *Value;
  AssignStmt(Expr *Target, Expr *Value, SourceLoc Loc)
      : Stmt(StmtKind::Assign, Loc), Target(Target), Value(Value) {}
};

/// An expression evaluated for side effects (a call, typically).
struct ExprStmt : Stmt {
  Expr *E;
  ExprStmt(Expr *E, SourceLoc Loc) : Stmt(StmtKind::Expr, Loc), E(E) {}
};

struct BlockStmt : Stmt {
  std::vector<Stmt *> Body;
  BlockStmt(std::vector<Stmt *> Body, SourceLoc Loc)
      : Stmt(StmtKind::Block, Loc), Body(std::move(Body)) {}
};

struct IfStmt : Stmt {
  Expr *Cond;
  Stmt *Then;
  Stmt *Else; // May be null.
  IfStmt(Expr *Cond, Stmt *Then, Stmt *Else, SourceLoc Loc)
      : Stmt(StmtKind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}
};

struct ForStmt : Stmt {
  Stmt *Init; // May be null; DeclStmt or AssignStmt.
  Expr *Cond; // May be null (infinite loop).
  Stmt *Step; // May be null; AssignStmt.
  Stmt *Body;
  ForStmt(Stmt *Init, Expr *Cond, Stmt *Step, Stmt *Body, SourceLoc Loc)
      : Stmt(StmtKind::For, Loc), Init(Init), Cond(Cond), Step(Step),
        Body(Body) {}
};

struct WhileStmt : Stmt {
  Expr *Cond;
  Stmt *Body;
  WhileStmt(Expr *Cond, Stmt *Body, SourceLoc Loc)
      : Stmt(StmtKind::While, Loc), Cond(Cond), Body(Body) {}
};

struct DoWhileStmt : Stmt {
  Stmt *Body;
  Expr *Cond;
  DoWhileStmt(Stmt *Body, Expr *Cond, SourceLoc Loc)
      : Stmt(StmtKind::DoWhile, Loc), Body(Body), Cond(Cond) {}
};

struct BreakStmt : Stmt {
  explicit BreakStmt(SourceLoc Loc) : Stmt(StmtKind::Break, Loc) {}
};

struct ContinueStmt : Stmt {
  explicit ContinueStmt(SourceLoc Loc) : Stmt(StmtKind::Continue, Loc) {}
};

struct ReturnStmt : Stmt {
  Expr *Value; // May be null.
  ReturnStmt(Expr *Value, SourceLoc Loc)
      : Stmt(StmtKind::Return, Loc), Value(Value) {}
};

//===----------------------------------------------------------------------===//
// Context and translation unit
//===----------------------------------------------------------------------===//

/// Owns every AST node of one translation unit.
class AstContext {
public:
  template <typename T, typename... Args> T *create(Args &&...As) {
    auto Node = std::make_unique<T>(std::forward<Args>(As)...);
    T *Ptr = Node.get();
    Allocations.push_back(std::move(Node));
    return Ptr;
  }

  VarDecl *createVarDecl() {
    auto Node = std::make_unique<VarDecl>();
    VarDecl *Ptr = Node.get();
    VarAllocations.push_back(std::move(Node));
    return Ptr;
  }

  FuncDecl *createFuncDecl() {
    auto Node = std::make_unique<FuncDecl>();
    FuncDecl *Ptr = Node.get();
    FuncAllocations.push_back(std::move(Node));
    return Ptr;
  }

private:
  // Type-erased ownership: Stmt/Expr have no virtual destructor (they are
  // plain structs), so shared_ptr<void>'s type-erased deleter destroys each
  // node through its concrete type.
  std::vector<std::shared_ptr<void>> Allocations;
  std::vector<std::unique_ptr<VarDecl>> VarAllocations;
  std::vector<std::unique_ptr<FuncDecl>> FuncAllocations;
};

/// A parsed translation unit: global variables and functions, in source
/// order.
struct TranslationUnit {
  std::vector<VarDecl *> Globals;
  std::vector<FuncDecl *> Functions;

  /// Finds a function by name; null if absent.
  FuncDecl *findFunction(const std::string &Name) const;
  /// Finds a global by name; null if absent.
  VarDecl *findGlobal(const std::string &Name) const;
};

/// Renders an expression as source-like text (for tests/diagnostics).
std::string printExpr(const Expr *E);

/// Renders a statement tree with two-space indentation.
std::string printStmt(const Stmt *S, unsigned Indent = 0);

} // namespace specai

#endif // SPECAI_LANG_AST_H
