//===- Parser.cpp ---------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include <cassert>

using namespace specai;

Parser::Parser(std::vector<Token> Tokens, AstContext &Context,
               DiagnosticEngine &Diags)
    : Tokens(std::move(Tokens)), Context(Context), Diags(Diags) {
  assert(!this->Tokens.empty() && this->Tokens.back().is(TokenKind::Eof) &&
         "token stream must end with Eof");
}

const Token &Parser::peek(unsigned Ahead) const {
  size_t Index = Pos + Ahead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1;
  return Tokens[Index];
}

Token Parser::advance() {
  Token T = current();
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::match(TokenKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Where) {
  if (match(Kind))
    return true;
  Diags.error(current().Loc, std::string("expected ") + tokenKindName(Kind) +
                                 " " + Where + ", found " +
                                 tokenKindName(current().Kind));
  return false;
}

void Parser::synchronizeToSemi() {
  while (!check(TokenKind::Eof) && !check(TokenKind::Semi) &&
         !check(TokenKind::RBrace))
    advance();
  match(TokenKind::Semi);
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

bool Parser::parseQualifiersAndType(QualType &Type, bool &SawAny) {
  SawAny = false;
  while (true) {
    if (match(TokenKind::KwSecret)) {
      Type.IsSecret = true;
      SawAny = true;
      continue;
    }
    if (match(TokenKind::KwReg)) {
      Type.IsReg = true;
      SawAny = true;
      continue;
    }
    if (match(TokenKind::KwConst)) {
      Type.IsConst = true;
      SawAny = true;
      continue;
    }
    if (match(TokenKind::KwUnsigned)) {
      // Signedness is irrelevant to the cache model; accept and ignore.
      SawAny = true;
      continue;
    }
    break;
  }
  if (match(TokenKind::KwChar)) {
    Type.Kind = TypeKind::Char;
  } else if (match(TokenKind::KwShort)) {
    Type.Kind = TypeKind::Short;
  } else if (match(TokenKind::KwInt)) {
    Type.Kind = TypeKind::Int;
  } else if (match(TokenKind::KwLong)) {
    Type.Kind = TypeKind::Long;
    // Accept "long int".
    match(TokenKind::KwInt);
  } else if (match(TokenKind::KwVoid)) {
    Type.Kind = TypeKind::Void;
  } else {
    if (SawAny)
      Diags.error(current().Loc, "expected type after qualifier");
    return false;
  }
  SawAny = true;
  return true;
}

std::vector<VarDecl *>
Parser::parseVarDeclarators(QualType Type, bool IsGlobal, FuncDecl *Parent) {
  std::vector<VarDecl *> Decls;
  while (true) {
    SourceLoc Loc = current().Loc;
    if (!check(TokenKind::Identifier)) {
      Diags.error(Loc, "expected variable name in declaration");
      synchronizeToSemi();
      return Decls;
    }
    std::string Name = advance().Text;

    VarDecl *Decl = Context.createVarDecl();
    Decl->Name = std::move(Name);
    Decl->Type = Type;
    Decl->Loc = Loc;
    Decl->IsGlobal = IsGlobal;
    Decl->Parent = Parent;

    if (match(TokenKind::LBracket)) {
      // Array sizes must be constant expressions; Sema folds SizeExpr into
      // NumElements and validates it.
      Decl->IsArray = true;
      Decl->SizeExpr = parseExpr();
      expect(TokenKind::RBracket, "after array size");
    }

    if (match(TokenKind::Equal)) {
      if (match(TokenKind::LBrace)) {
        if (!check(TokenKind::RBrace)) {
          do {
            if (Expr *E = parseExpr())
              Decl->Init.push_back(E);
            else
              break;
          } while (match(TokenKind::Comma));
        }
        expect(TokenKind::RBrace, "after array initializer");
      } else if (Expr *E = parseExpr()) {
        Decl->Init.push_back(E);
      }
    }

    Decls.push_back(Decl);
    if (!match(TokenKind::Comma))
      break;
  }
  expect(TokenKind::Semi, "after variable declaration");
  return Decls;
}

FuncDecl *Parser::parseFunction(QualType ReturnType, std::string Name,
                                SourceLoc Loc) {
  FuncDecl *Func = Context.createFuncDecl();
  Func->Name = std::move(Name);
  Func->ReturnType = ReturnType;
  Func->Loc = Loc;

  FuncDecl *SavedFunction = CurrentFunction;
  CurrentFunction = Func;

  if (!check(TokenKind::RParen)) {
    // `void` alone means an empty parameter list.
    if (check(TokenKind::KwVoid) && peek(1).is(TokenKind::RParen)) {
      advance();
    } else {
      do {
        QualType ParamType;
        bool SawAny = false;
        if (!parseQualifiersAndType(ParamType, SawAny)) {
          Diags.error(current().Loc, "expected parameter type");
          break;
        }
        if (!check(TokenKind::Identifier)) {
          Diags.error(current().Loc, "expected parameter name");
          break;
        }
        SourceLoc ParamLoc = current().Loc;
        std::string ParamName = advance().Text;
        VarDecl *Param = Context.createVarDecl();
        Param->Name = std::move(ParamName);
        Param->Type = ParamType;
        Param->Loc = ParamLoc;
        Param->IsParam = true;
        Param->Parent = Func;
        Func->Params.push_back(Param);
      } while (match(TokenKind::Comma));
    }
  }
  expect(TokenKind::RParen, "after parameter list");

  if (!check(TokenKind::LBrace)) {
    Diags.error(current().Loc, "expected function body");
    CurrentFunction = SavedFunction;
    return Func;
  }
  Func->Body = parseBlock();
  CurrentFunction = SavedFunction;
  return Func;
}

TranslationUnit Parser::parseTranslationUnit() {
  TranslationUnit Unit;
  while (!check(TokenKind::Eof)) {
    QualType Type;
    bool SawAny = false;
    if (!parseQualifiersAndType(Type, SawAny)) {
      Diags.error(current().Loc, "expected declaration at top level");
      advance();
      continue;
    }
    if (check(TokenKind::Identifier) && peek(1).is(TokenKind::LParen)) {
      SourceLoc Loc = current().Loc;
      std::string Name = advance().Text;
      advance(); // '('
      if (FuncDecl *Func = parseFunction(Type, std::move(Name), Loc))
        Unit.Functions.push_back(Func);
      continue;
    }
    for (VarDecl *Decl :
         parseVarDeclarators(Type, /*IsGlobal=*/true, /*Parent=*/nullptr))
      Unit.Globals.push_back(Decl);
  }
  return Unit;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

Stmt *Parser::parseBlock() {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::LBrace, "to open block");
  std::vector<Stmt *> Body;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    if (Stmt *S = parseStmt())
      Body.push_back(S);
  }
  expect(TokenKind::RBrace, "to close block");
  return Context.create<BlockStmt>(std::move(Body), Loc);
}

Stmt *Parser::parseStmt() {
  SourceLoc Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwDo:
    return parseDoWhile();
  case TokenKind::KwBreak:
    advance();
    expect(TokenKind::Semi, "after 'break'");
    return Context.create<BreakStmt>(Loc);
  case TokenKind::KwContinue:
    advance();
    expect(TokenKind::Semi, "after 'continue'");
    return Context.create<ContinueStmt>(Loc);
  case TokenKind::KwReturn:
    return parseReturn();
  case TokenKind::Semi:
    advance(); // Empty statement.
    return Context.create<BlockStmt>(std::vector<Stmt *>{}, Loc);
  default:
    break;
  }

  // Local declaration?
  QualType Type;
  bool SawAny = false;
  if (parseQualifiersAndType(Type, SawAny)) {
    std::vector<VarDecl *> Decls =
        parseVarDeclarators(Type, /*IsGlobal=*/false, CurrentFunction);
    return Context.create<DeclStmt>(std::move(Decls), Loc);
  }
  if (SawAny) {
    synchronizeToSemi();
    return nullptr;
  }
  return parseExprOrAssign(/*ConsumeSemi=*/true);
}

Stmt *Parser::parseIf() {
  SourceLoc Loc = advance().Loc; // 'if'
  expect(TokenKind::LParen, "after 'if'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  Stmt *Then = parseStmt();
  Stmt *Else = nullptr;
  if (match(TokenKind::KwElse))
    Else = parseStmt();
  if (!Cond || !Then)
    return nullptr;
  return Context.create<IfStmt>(Cond, Then, Else, Loc);
}

Stmt *Parser::parseFor() {
  SourceLoc Loc = advance().Loc; // 'for'
  expect(TokenKind::LParen, "after 'for'");

  Stmt *Init = nullptr;
  if (!check(TokenKind::Semi)) {
    QualType Type;
    bool SawAny = false;
    if (parseQualifiersAndType(Type, SawAny)) {
      // Declaration-style init consumes the ';' itself.
      std::vector<VarDecl *> Decls =
          parseVarDeclarators(Type, /*IsGlobal=*/false, CurrentFunction);
      Init = Context.create<DeclStmt>(std::move(Decls), Loc);
    } else {
      Init = parseExprOrAssign(/*ConsumeSemi=*/false);
      expect(TokenKind::Semi, "after for-init");
    }
  } else {
    advance();
  }

  Expr *Cond = nullptr;
  if (!check(TokenKind::Semi))
    Cond = parseExpr();
  expect(TokenKind::Semi, "after for-condition");

  Stmt *Step = nullptr;
  if (!check(TokenKind::RParen))
    Step = parseExprOrAssign(/*ConsumeSemi=*/false);
  expect(TokenKind::RParen, "after for-header");

  Stmt *Body = parseStmt();
  if (!Body)
    return nullptr;
  return Context.create<ForStmt>(Init, Cond, Step, Body, Loc);
}

Stmt *Parser::parseWhile() {
  SourceLoc Loc = advance().Loc; // 'while'
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after while condition");
  Stmt *Body = parseStmt();
  if (!Cond || !Body)
    return nullptr;
  return Context.create<WhileStmt>(Cond, Body, Loc);
}

Stmt *Parser::parseDoWhile() {
  SourceLoc Loc = advance().Loc; // 'do'
  Stmt *Body = parseStmt();
  expect(TokenKind::KwWhile, "after do-body");
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after do-while condition");
  expect(TokenKind::Semi, "after do-while");
  if (!Cond || !Body)
    return nullptr;
  return Context.create<DoWhileStmt>(Body, Cond, Loc);
}

Stmt *Parser::parseReturn() {
  SourceLoc Loc = advance().Loc; // 'return'
  Expr *Value = nullptr;
  if (!check(TokenKind::Semi))
    Value = parseExpr();
  expect(TokenKind::Semi, "after return");
  return Context.create<ReturnStmt>(Value, Loc);
}

Expr *Parser::rebuildLValue(Expr *LValue) {
  if (!LValue)
    return nullptr;
  if (LValue->Kind == ExprKind::VarRef) {
    auto *Ref = static_cast<VarRefExpr *>(LValue);
    return Context.create<VarRefExpr>(Ref->Name, Ref->Loc);
  }
  assert(LValue->Kind == ExprKind::Index && "lvalue must be var or index");
  auto *IE = static_cast<IndexExpr *>(LValue);
  auto *Base = Context.create<VarRefExpr>(IE->Base->Name, IE->Base->Loc);
  // The index subexpression is shared; expressions are side-effect free
  // except calls, and double evaluation of the index matches the two memory
  // accesses (load + store) a compound array assignment performs.
  return Context.create<IndexExpr>(Base, IE->Index, IE->Loc);
}

Stmt *Parser::parseExprOrAssign(bool ConsumeSemi) {
  SourceLoc Loc = current().Loc;
  Expr *LHS = parsePostfix();
  if (!LHS) {
    synchronizeToSemi();
    return nullptr;
  }

  auto FinishSemi = [&]() {
    if (ConsumeSemi)
      expect(TokenKind::Semi, "after statement");
  };

  // Map compound-assignment tokens to the underlying binary operator.
  auto CompoundOp = [](TokenKind Kind) -> const BinaryOpKind * {
    static const BinaryOpKind Add = BinaryOpKind::Add, Sub = BinaryOpKind::Sub,
                              Mul = BinaryOpKind::Mul, Div = BinaryOpKind::Div,
                              Rem = BinaryOpKind::Rem, And = BinaryOpKind::And,
                              Or = BinaryOpKind::Or, Xor = BinaryOpKind::Xor,
                              Shl = BinaryOpKind::Shl, Shr = BinaryOpKind::Shr;
    switch (Kind) {
    case TokenKind::PlusEqual:
      return &Add;
    case TokenKind::MinusEqual:
      return &Sub;
    case TokenKind::StarEqual:
      return &Mul;
    case TokenKind::SlashEqual:
      return &Div;
    case TokenKind::PercentEqual:
      return &Rem;
    case TokenKind::AmpEqual:
      return &And;
    case TokenKind::PipeEqual:
      return &Or;
    case TokenKind::CaretEqual:
      return &Xor;
    case TokenKind::LessLessEqual:
      return &Shl;
    case TokenKind::GreaterGreaterEqual:
      return &Shr;
    default:
      return nullptr;
    }
  };

  bool IsLValue =
      LHS->Kind == ExprKind::VarRef || LHS->Kind == ExprKind::Index;

  if (IsLValue && match(TokenKind::Equal)) {
    Expr *Value = parseExpr();
    FinishSemi();
    if (!Value)
      return nullptr;
    return Context.create<AssignStmt>(LHS, Value, Loc);
  }
  if (const BinaryOpKind *Op = CompoundOp(current().Kind)) {
    if (!IsLValue) {
      Diags.error(Loc, "left side of compound assignment is not an lvalue");
      synchronizeToSemi();
      return nullptr;
    }
    advance();
    Expr *RHS = parseExpr();
    FinishSemi();
    if (!RHS)
      return nullptr;
    Expr *Reload = rebuildLValue(LHS);
    Expr *Value = Context.create<BinaryExpr>(*Op, Reload, RHS, Loc);
    return Context.create<AssignStmt>(LHS, Value, Loc);
  }
  if (check(TokenKind::PlusPlus) || check(TokenKind::MinusMinus)) {
    if (!IsLValue) {
      Diags.error(Loc, "operand of increment is not an lvalue");
      synchronizeToSemi();
      return nullptr;
    }
    BinaryOpKind Op = check(TokenKind::PlusPlus) ? BinaryOpKind::Add
                                                 : BinaryOpKind::Sub;
    advance();
    FinishSemi();
    Expr *Reload = rebuildLValue(LHS);
    Expr *One = Context.create<IntLitExpr>(1, Loc);
    Expr *Value = Context.create<BinaryExpr>(Op, Reload, One, Loc);
    return Context.create<AssignStmt>(LHS, Value, Loc);
  }

  // Plain expression statement (typically a call).
  FinishSemi();
  return Context.create<ExprStmt>(LHS, Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::parseExpr() { return parseTernary(); }

Expr *Parser::parseTernary() {
  Expr *Cond = parseBinary(0);
  if (!Cond || !match(TokenKind::Question))
    return Cond;
  SourceLoc Loc = Cond->Loc;
  Expr *TrueExpr = parseExpr();
  expect(TokenKind::Colon, "in ternary expression");
  Expr *FalseExpr = parseTernary();
  if (!TrueExpr || !FalseExpr)
    return nullptr;
  return Context.create<TernaryExpr>(Cond, TrueExpr, FalseExpr, Loc);
}

namespace {
struct BinOpInfo {
  BinaryOpKind Op;
  int Prec;
};
} // namespace

static const BinOpInfo *binOpInfo(TokenKind Kind) {
  static const BinOpInfo LogOr = {BinaryOpKind::LogOr, 1};
  static const BinOpInfo LogAnd = {BinaryOpKind::LogAnd, 2};
  static const BinOpInfo Or = {BinaryOpKind::Or, 3};
  static const BinOpInfo Xor = {BinaryOpKind::Xor, 4};
  static const BinOpInfo And = {BinaryOpKind::And, 5};
  static const BinOpInfo Eq = {BinaryOpKind::Eq, 6};
  static const BinOpInfo Ne = {BinaryOpKind::Ne, 6};
  static const BinOpInfo Lt = {BinaryOpKind::Lt, 7};
  static const BinOpInfo Le = {BinaryOpKind::Le, 7};
  static const BinOpInfo Gt = {BinaryOpKind::Gt, 7};
  static const BinOpInfo Ge = {BinaryOpKind::Ge, 7};
  static const BinOpInfo Shl = {BinaryOpKind::Shl, 8};
  static const BinOpInfo Shr = {BinaryOpKind::Shr, 8};
  static const BinOpInfo Add = {BinaryOpKind::Add, 9};
  static const BinOpInfo Sub = {BinaryOpKind::Sub, 9};
  static const BinOpInfo Mul = {BinaryOpKind::Mul, 10};
  static const BinOpInfo Div = {BinaryOpKind::Div, 10};
  static const BinOpInfo Rem = {BinaryOpKind::Rem, 10};
  switch (Kind) {
  case TokenKind::PipePipe:
    return &LogOr;
  case TokenKind::AmpAmp:
    return &LogAnd;
  case TokenKind::Pipe:
    return &Or;
  case TokenKind::Caret:
    return &Xor;
  case TokenKind::Amp:
    return &And;
  case TokenKind::EqualEqual:
    return &Eq;
  case TokenKind::BangEqual:
    return &Ne;
  case TokenKind::Less:
    return &Lt;
  case TokenKind::LessEqual:
    return &Le;
  case TokenKind::Greater:
    return &Gt;
  case TokenKind::GreaterEqual:
    return &Ge;
  case TokenKind::LessLess:
    return &Shl;
  case TokenKind::GreaterGreater:
    return &Shr;
  case TokenKind::Plus:
    return &Add;
  case TokenKind::Minus:
    return &Sub;
  case TokenKind::Star:
    return &Mul;
  case TokenKind::Slash:
    return &Div;
  case TokenKind::Percent:
    return &Rem;
  default:
    return nullptr;
  }
}

Expr *Parser::parseBinary(int MinPrec) {
  Expr *LHS = parseUnary();
  if (!LHS)
    return nullptr;
  while (true) {
    const BinOpInfo *Info = binOpInfo(current().Kind);
    if (!Info || Info->Prec < MinPrec)
      return LHS;
    SourceLoc Loc = current().Loc;
    advance();
    Expr *RHS = parseBinary(Info->Prec + 1);
    if (!RHS)
      return nullptr;
    LHS = Context.create<BinaryExpr>(Info->Op, LHS, RHS, Loc);
  }
}

Expr *Parser::parseUnary() {
  SourceLoc Loc = current().Loc;
  if (match(TokenKind::Minus)) {
    Expr *Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return Context.create<UnaryExpr>(UnaryOpKind::Neg, Operand, Loc);
  }
  if (match(TokenKind::Plus))
    return parseUnary();
  if (match(TokenKind::Tilde)) {
    Expr *Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return Context.create<UnaryExpr>(UnaryOpKind::BitNot, Operand, Loc);
  }
  if (match(TokenKind::Bang)) {
    Expr *Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return Context.create<UnaryExpr>(UnaryOpKind::LogNot, Operand, Loc);
  }
  // C-style casts like (long) appear in the paper's code; accept and drop.
  if (check(TokenKind::LParen)) {
    TokenKind Next = peek(1).Kind;
    bool IsTypeTok = Next == TokenKind::KwChar || Next == TokenKind::KwShort ||
                     Next == TokenKind::KwInt || Next == TokenKind::KwLong ||
                     Next == TokenKind::KwUnsigned;
    if (IsTypeTok) {
      advance(); // '('
      QualType Ignored;
      bool SawAny = false;
      parseQualifiersAndType(Ignored, SawAny);
      expect(TokenKind::RParen, "after cast type");
      return parseUnary();
    }
  }
  return parsePostfix();
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  if (!E)
    return nullptr;
  while (match(TokenKind::LBracket)) {
    Expr *Index = parseExpr();
    expect(TokenKind::RBracket, "after array index");
    if (!Index)
      return nullptr;
    if (E->Kind != ExprKind::VarRef) {
      Diags.error(E->Loc, "only named arrays can be subscripted");
      return nullptr;
    }
    E = Context.create<IndexExpr>(static_cast<VarRefExpr *>(E), Index, E->Loc);
  }
  return E;
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = current().Loc;
  if (check(TokenKind::IntLiteral)) {
    int64_t Value = advance().IntValue;
    return Context.create<IntLitExpr>(Value, Loc);
  }
  if (check(TokenKind::Identifier)) {
    std::string Name = advance().Text;
    if (match(TokenKind::LParen)) {
      std::vector<Expr *> Args;
      if (!check(TokenKind::RParen)) {
        do {
          if (Expr *Arg = parseExpr())
            Args.push_back(Arg);
          else
            break;
        } while (match(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "after call arguments");
      return Context.create<CallExpr>(std::move(Name), std::move(Args), Loc);
    }
    return Context.create<VarRefExpr>(std::move(Name), Loc);
  }
  if (match(TokenKind::LParen)) {
    Expr *E = parseExpr();
    expect(TokenKind::RParen, "after parenthesized expression");
    return E;
  }
  Diags.error(Loc, std::string("expected expression, found ") +
                       tokenKindName(current().Kind));
  advance();
  return nullptr;
}
