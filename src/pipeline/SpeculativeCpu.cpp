//===- SpeculativeCpu.cpp -------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "pipeline/SpeculativeCpu.h"

using namespace specai;

SpeculationWindows specai::calibrateWindows(const TimingModel &Timing) {
  // While a branch condition resolves, the front end keeps issuing
  // IssueWidth instructions per cycle down the predicted path; the window
  // is therefore resolution-latency x width, bounded below by 1.
  SpeculationWindows W;
  W.OnHit = std::max<uint32_t>(1, Timing.BranchResolveLatency *
                                      Timing.IssueWidth);
  W.OnMiss = std::max<uint32_t>(1, Timing.MissLatency * Timing.IssueWidth);
  return W;
}

SpeculativeCpu::SpeculativeCpu(const Program &P, const MemoryModel &MM,
                               BranchPredictor &Predictor, TimingModel Timing,
                               bool EnableSpeculation)
    : P(P), MM(MM), Predictor(Predictor), Timing(Timing),
      EnableSpeculation(EnableSpeculation),
      Windows(calibrateWindows(Timing)), M(P), Cache(MM.config()) {}

void SpeculativeCpu::speculate(BlockId PredictedTarget, uint32_t Window,
                               BranchPc Pc, CpuRunStats &Stats) {
  Machine::Checkpoint Ckpt = M.checkpoint();
  M.jumpTo(PredictedTarget);
  M.setSuppressStores(true);

  auto StopIt = SpeculationStops.find(Pc);
  BlockId StopBlock =
      StopIt == SpeculationStops.end() ? InvalidBlock : StopIt->second;

  for (uint32_t Executed = 0; Executed < Window && !M.halted(); ++Executed) {
    if (M.currentBlock() == StopBlock)
      break; // Confined mode: the wrong path reached the reconvergence.
    const Instruction &I = M.currentInstruction();
    // A fence is a speculation barrier: the front end may not fetch past
    // it until every older branch resolves, so the wrong-path walk ends
    // here whatever window budget remains.
    if (I.Op == Opcode::Fence)
      break;
    // A further unresolved branch inside the window: follow the
    // predictor's guess (single level of outstanding speculation; the
    // guess steers the wrong-path walk).
    if (I.Op == Opcode::Br) {
      BranchPc Pc = (static_cast<uint64_t>(M.currentBlock()) << 20) |
                    M.currentInst();
      bool Guess = Predictor.predict(Pc);
      const Instruction Inst = I;
      // Do not train the predictor on wrong-path branches.
      M.jumpTo(Guess ? Inst.TrueTarget : Inst.FalseTarget);
      continue;
    }
    Machine::StepResult R = M.step();
    if (R.DidAccess) {
      ++Stats.SpecAccesses;
      if (OnAccess)
        OnAccess(R.Access, /*Speculative=*/true, Cache);
      bool Hit = true;
      if (R.Access.IsLoad) {
        // Speculative loads fill the cache; speculative stores stay in the
        // store buffer and never touch it.
        Hit = Cache.access(blockOf(R.Access));
        if (!Hit)
          ++Stats.SpecMisses;
      }
      SpecTrace.push_back({R.Access, Hit});
    }
  }

  M.setSuppressStores(false);
  M.restore(Ckpt);
}

CpuRunStats SpeculativeCpu::run(uint64_t MaxSteps) {
  CpuRunStats Stats;
  Trace.clear();
  SpecTrace.clear();

  while (!M.halted() && Stats.Instructions < MaxSteps) {
    const Instruction &I = M.currentInstruction();

    if (I.Op == Opcode::Br) {
      BranchPc Pc = (static_cast<uint64_t>(M.currentBlock()) << 20) |
                    M.currentInst();
      // The window is governed by how long the condition takes to resolve:
      // a recent miss means the data is still in flight (paper §6.2's
      // b_miss), a hit resolves quickly (b_hit). A per-branch override
      // pins the window regardless of the proxy; zero means this branch
      // resolves before the front end can fetch past it, so the predictor
      // is never consulted (its guess could not matter) and no
      // misprediction is possible.
      uint32_t Window = LastLoadMissed ? Windows.OnMiss : Windows.OnHit;
      if (auto OverrideIt = WindowOverrides.find(Pc);
          OverrideIt != WindowOverrides.end())
        Window = OverrideIt->second;
      bool Predicted = Window > 0 ? Predictor.predict(Pc) : false;

      Machine::StepResult R = M.step();
      ++Stats.Instructions;
      Stats.Cycles += Timing.BranchResolveLatency;
      ++Stats.Branches;
      Predictor.update(Pc, R.BranchTaken);
      if (OnCommit)
        OnCommit(R, Timing.BranchResolveLatency, Stats.Cycles);

      if (EnableSpeculation && Window > 0 && Predicted != R.BranchTaken) {
        ++Stats.Mispredicts;
        BlockId ActualBlock = M.currentBlock();
        uint32_t ActualInst = M.currentInst();
        bool WasHalted = M.halted();
        BlockId PredictedTarget =
            Predicted ? I.TrueTarget : I.FalseTarget;
        speculate(PredictedTarget, Window, Pc, Stats);
        // Resume architecturally on the actual path.
        if (!WasHalted)
          M.jumpTo(ActualBlock, ActualInst);
      }
      continue;
    }

    Machine::StepResult R = M.step();
    ++Stats.Instructions;
    uint64_t Charged = Timing.AluLatency;
    if (R.DidAccess) {
      if (OnAccess)
        OnAccess(R.Access, /*Speculative=*/false, Cache);
      bool Hit = Cache.access(blockOf(R.Access));
      Charged = Hit ? Timing.HitLatency : Timing.MissLatency;
      if (Hit)
        ++Stats.Hits;
      else
        ++Stats.Misses;
      LastLoadMissed = !Hit;
      Trace.push_back({R.Access, Hit});
    }
    Stats.Cycles += Charged;
    if (OnCommit)
      OnCommit(R, Charged, Stats.Cycles);
  }

  Stats.Completed = M.halted();
  Stats.ReturnValue = M.returnValue();
  return Stats;
}
