//===- BranchPredictor.cpp ------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "pipeline/BranchPredictor.h"

#include <algorithm>

using namespace specai;

BranchPredictor::~BranchPredictor() = default;

static uint64_t foldPc(BranchPc Pc, unsigned Bits) {
  // Cheap xor-fold so nearby sites spread across the table.
  uint64_t H = Pc * 0x9e3779b97f4a7c15ULL;
  return (H >> (64 - Bits)) & ((1ULL << Bits) - 1);
}

BimodalPredictor::BimodalPredictor(unsigned TableBits)
    : TableBits(TableBits), Counters(1ULL << TableBits, 1) {}

bool BimodalPredictor::predict(BranchPc Pc) {
  return Counters[foldPc(Pc, TableBits)] >= 2;
}

void BimodalPredictor::update(BranchPc Pc, bool Taken) {
  uint8_t &C = Counters[foldPc(Pc, TableBits)];
  if (Taken)
    C = static_cast<uint8_t>(std::min<int>(C + 1, 3));
  else
    C = static_cast<uint8_t>(std::max<int>(C - 1, 0));
}

void BimodalPredictor::reset() {
  std::fill(Counters.begin(), Counters.end(), 1);
}

GSharePredictor::GSharePredictor(unsigned TableBits, unsigned HistoryBits)
    : TableBits(TableBits), HistoryBits(HistoryBits),
      Counters(1ULL << TableBits, 1) {}

bool GSharePredictor::predict(BranchPc Pc) {
  uint64_t Index = (foldPc(Pc, TableBits) ^ History) & ((1ULL << TableBits) - 1);
  return Counters[Index] >= 2;
}

void GSharePredictor::update(BranchPc Pc, bool Taken) {
  uint64_t Index = (foldPc(Pc, TableBits) ^ History) & ((1ULL << TableBits) - 1);
  uint8_t &C = Counters[Index];
  if (Taken)
    C = static_cast<uint8_t>(std::min<int>(C + 1, 3));
  else
    C = static_cast<uint8_t>(std::max<int>(C - 1, 0));
  History = ((History << 1) | (Taken ? 1 : 0)) & ((1ULL << HistoryBits) - 1);
}

void GSharePredictor::reset() {
  std::fill(Counters.begin(), Counters.end(), 1);
  History = 0;
}

PerceptronPredictor::PerceptronPredictor(unsigned TableBits,
                                         unsigned HistoryBits)
    : TableBits(TableBits), HistoryBits(HistoryBits),
      Threshold(static_cast<int32_t>(1.93 * HistoryBits + 14)),
      Weights(1ULL << TableBits, std::vector<int16_t>(HistoryBits + 1, 0)) {}

int32_t PerceptronPredictor::dot(BranchPc Pc) const {
  const auto &W = Weights[foldPc(Pc, TableBits)];
  int32_t Sum = W[0]; // Bias.
  for (unsigned I = 0; I != HistoryBits; ++I) {
    bool Bit = (History >> I) & 1;
    Sum += Bit ? W[I + 1] : -W[I + 1];
  }
  return Sum;
}

bool PerceptronPredictor::predict(BranchPc Pc) { return dot(Pc) >= 0; }

void PerceptronPredictor::update(BranchPc Pc, bool Taken) {
  int32_t Y = dot(Pc);
  bool Predicted = Y >= 0;
  auto &W = Weights[foldPc(Pc, TableBits)];
  auto Bump = [](int16_t &Weight, bool Agree) {
    int32_t Next = Weight + (Agree ? 1 : -1);
    Weight = static_cast<int16_t>(std::clamp<int32_t>(Next, -128, 127));
  };
  if (Predicted != Taken || std::abs(Y) <= Threshold) {
    Bump(W[0], Taken);
    for (unsigned I = 0; I != HistoryBits; ++I) {
      bool Bit = (History >> I) & 1;
      Bump(W[I + 1], Bit == Taken);
    }
  }
  History = ((History << 1) | (Taken ? 1 : 0)) & ((1ULL << HistoryBits) - 1);
}

void PerceptronPredictor::reset() {
  for (auto &W : Weights)
    std::fill(W.begin(), W.end(), 0);
  History = 0;
}

std::string ScriptedPredictor::name() const {
  std::string N = "scripted:";
  for (bool B : Script)
    N += B ? 'T' : 'N';
  N += Fallback ? "+T" : "+N";
  return N;
}

std::vector<std::unique_ptr<BranchPredictor>>
specai::makeStandardPredictors() {
  std::vector<std::unique_ptr<BranchPredictor>> Out;
  Out.push_back(std::make_unique<StaticPredictor>(true));
  Out.push_back(std::make_unique<StaticPredictor>(false));
  Out.push_back(std::make_unique<BimodalPredictor>());
  Out.push_back(std::make_unique<GSharePredictor>());
  Out.push_back(std::make_unique<PerceptronPredictor>());
  return Out;
}
