//===- SpeculativeCpu.h - Speculative CPU simulator -------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A speculative CPU substrate standing in for the paper's GEM5 O3CPU
/// (Alpha 21264) testbed. It executes lowered programs concretely with a
/// pluggable branch predictor; on a misprediction it executes the predicted
/// (wrong) path for a bounded window, letting speculative *loads* fill the
/// cache while speculative *stores* stay in the store buffer (never visible
/// to memory or the cache), then rolls the register state back and resumes
/// on the correct path — exactly the behavior of Figure 3's right-hand
/// trace.
///
/// The simulator serves three roles:
///  1. Ground truth for soundness: every access the speculative analysis
///     classifies as a must-hit must hit here under every predictor.
///  2. Calibration: the speculation windows b_hit/b_miss follow from the
///     timing model (window = resolution latency x issue width), the
///     paper's 20/200 derivation from pipelined traces.
///  3. Timing: cycle counts for the execution-time-estimation experiments.
///
/// Model simplifications (documented in DESIGN.md §2, with the arguments
/// for why each is conservative): one in-flight speculation at a time
/// (the analysis' per-color treatment is the conservative envelope of
/// deeper nesting), and the window is chosen by whether the most recent
/// committed load hit (a proxy for the branch condition's resolution
/// latency).
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_PIPELINE_SPECULATIVECPU_H
#define SPECAI_PIPELINE_SPECULATIVECPU_H

#include "cache/CacheSim.h"
#include "ir/Interp.h"
#include "memory/MemoryModel.h"
#include "pipeline/BranchPredictor.h"

#include <functional>
#include <unordered_map>
#include <vector>

namespace specai {

/// Latency/width parameters of the modeled core.
struct TimingModel {
  /// Cycles for a cache hit (paper §1: "1-3 clock cycles").
  uint32_t HitLatency = 2;
  /// Cycles for a cache miss ("tens or even hundreds").
  uint32_t MissLatency = 100;
  /// Cycles for a non-memory instruction.
  uint32_t AluLatency = 1;
  /// Instructions issued per cycle while waiting on a branch condition.
  uint32_t IssueWidth = 2;
  /// Cycles to resolve a branch whose inputs are ready (hit case).
  uint32_t BranchResolveLatency = 10;
};

/// Speculation windows derived from the timing model: the number of
/// instructions the core can speculate while the branch condition resolves.
/// With the defaults this reproduces the paper's (20, 200).
struct SpeculationWindows {
  uint32_t OnHit = 20;
  uint32_t OnMiss = 200;
};

/// window = resolution latency x issue width.
SpeculationWindows calibrateWindows(const TimingModel &Timing);

/// Aggregate results of one simulated run.
struct CpuRunStats {
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  /// Committed (architectural) accesses.
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  /// Accesses performed inside speculative windows (squashed but cache
  /// visible; the paper's #SpMiss are "not observable from outside").
  uint64_t SpecAccesses = 0;
  uint64_t SpecMisses = 0;
  uint64_t Branches = 0;
  uint64_t Mispredicts = 0;
  bool Completed = false;
  int64_t ReturnValue = 0;
};

/// Executes programs with speculative side effects on a concrete cache.
class SpeculativeCpu {
public:
  /// \p EnableSpeculation false gives the in-order, non-speculative
  /// reference run (Figure 3 left).
  SpeculativeCpu(const Program &P, const MemoryModel &MM,
                 BranchPredictor &Predictor, TimingModel Timing = {},
                 bool EnableSpeculation = true);

  /// Access to the machine for setting inputs before run().
  Machine &machine() { return M; }
  CacheSim &cache() { return Cache; }

  /// Overrides the calibrated speculation windows.
  void setWindows(SpeculationWindows W) { Windows = W; }
  SpeculationWindows windows() const { return Windows; }

  /// Confines speculative windows to the mispredicted side: when the wrong
  /// path reaches \p StopBlock (the branch's reconvergence point), the
  /// window ends early. Keyed by the branch location. This matches the
  /// paper's virtual-control-flow model, where rollback edges originate
  /// from the speculated branch body only (Figure 6); the soundness
  /// property tests run the simulator in this mode.
  void setSpeculationStop(BlockId BranchBlock, uint32_t BranchInst,
                          BlockId StopBlock) {
    SpeculationStops[(static_cast<uint64_t>(BranchBlock) << 20) |
                     BranchInst] = StopBlock;
  }

  /// Overrides the speculation window of one specific branch, regardless of
  /// the last load's hit/miss outcome. A zero window disables speculation at
  /// that branch entirely: it resolves before the front end can fetch past
  /// it, so the predictor is not even consulted there (no misprediction is
  /// possible, and scripted predictors spend no decision on it). The
  /// differential fuzzer uses this to pin every
  /// branch's concrete window to exactly the depth bound the abstract
  /// engine assumed for the corresponding site (and to 0 for branches the
  /// speculation plan does not model, i.e. register-only conditions that
  /// resolve before any speculative access can issue).
  void setWindowOverride(BlockId BranchBlock, uint32_t BranchInst,
                         uint32_t Window) {
    WindowOverrides[(static_cast<uint64_t>(BranchBlock) << 20) |
                    BranchInst] = Window;
  }

  /// Observation hook, called immediately *before* each memory access is
  /// applied to the cache (i.e. with the access's input cache state), for
  /// both committed and speculative accesses. Speculative stores never
  /// reach the cache but are still reported. The soundness oracle uses this
  /// to compare per-access concrete cache states against the abstract
  /// engine's per-node input states.
  using AccessHook =
      std::function<void(const AccessEvent &E, bool Speculative,
                         const CacheSim &PreAccessCache)>;
  void setAccessHook(AccessHook Hook) { OnAccess = std::move(Hook); }

  /// Commit-side observation hook, called after every *committed*
  /// instruction with the cycles the timing model charged for it (hit or
  /// miss latency for accesses, the branch-resolution latency for
  /// branches, the ALU latency otherwise) and the cumulative committed
  /// cycle count. Squashed (speculative-window) instructions never fire
  /// it: their latency is hidden behind the unresolved branch, which is
  /// exactly why CpuRunStats::Cycles only advances at commit. The fuzzer's
  /// WCET oracle drives its per-node execution counts and cycle
  /// cross-check from here.
  using CommitHook = std::function<void(
      const Machine::StepResult &R, uint64_t ChargedCycles,
      uint64_t TotalCycles)>;
  void setCommitHook(CommitHook Hook) { OnCommit = std::move(Hook); }

  /// Runs to completion (or \p MaxSteps committed instructions).
  CpuRunStats run(uint64_t MaxSteps = 10'000'000);

  /// Committed access trace of the last run, with per-access hit flag.
  struct CommittedAccess {
    AccessEvent Access;
    bool Hit;
  };
  const std::vector<CommittedAccess> &committedTrace() const {
    return Trace;
  }
  /// Speculative (squashed) access trace of the last run.
  const std::vector<CommittedAccess> &speculativeTrace() const {
    return SpecTrace;
  }

private:
  BlockAddr blockOf(const AccessEvent &E) const {
    return MM.blockOf(E.Var, E.Element);
  }
  /// Runs the speculative window after a mispredicted branch.
  void speculate(BlockId PredictedTarget, uint32_t Window, BranchPc Pc,
                 CpuRunStats &Stats);

  const Program &P;
  const MemoryModel &MM;
  BranchPredictor &Predictor;
  TimingModel Timing;
  bool EnableSpeculation;
  SpeculationWindows Windows;
  Machine M;
  CacheSim Cache;
  std::vector<CommittedAccess> Trace;
  std::vector<CommittedAccess> SpecTrace;
  std::unordered_map<uint64_t, BlockId> SpeculationStops;
  std::unordered_map<uint64_t, uint32_t> WindowOverrides;
  AccessHook OnAccess;
  CommitHook OnCommit;
  bool LastLoadMissed = false;
};

} // namespace specai

#endif // SPECAI_PIPELINE_SPECULATIVECPU_H
