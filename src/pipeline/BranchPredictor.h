//===- BranchPredictor.h - Branch predictor models --------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Branch predictor models for the speculative CPU substrate. The paper's
/// soundness claim is predictor-agnostic ("regardless of the underlying
/// strategies" §3.2, citing two-level adaptive [63], perceptron [28],
/// neural [59] predictors); the simulator therefore ships several models so
/// the property tests can check the analysis envelope against all of them.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_PIPELINE_BRANCHPREDICTOR_H
#define SPECAI_PIPELINE_BRANCHPREDICTOR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace specai {

/// Opaque branch identity (site address) used for prediction indexing.
using BranchPc = uint64_t;

/// Abstract predictor interface.
class BranchPredictor {
public:
  virtual ~BranchPredictor();

  /// Predicts the direction of the branch at \p Pc.
  virtual bool predict(BranchPc Pc) = 0;
  /// Trains on the resolved outcome.
  virtual void update(BranchPc Pc, bool Taken) = 0;
  /// Resets all learned state.
  virtual void reset() = 0;
  virtual std::string name() const = 0;
};

/// Static predictor: always predicts one direction.
class StaticPredictor : public BranchPredictor {
public:
  explicit StaticPredictor(bool PredictTaken) : PredictTaken(PredictTaken) {}
  bool predict(BranchPc) override { return PredictTaken; }
  void update(BranchPc, bool) override {}
  void reset() override {}
  std::string name() const override {
    return PredictTaken ? "always-taken" : "never-taken";
  }

private:
  bool PredictTaken;
};

/// Classic 2-bit saturating counter table.
class BimodalPredictor : public BranchPredictor {
public:
  explicit BimodalPredictor(unsigned TableBits = 10);
  bool predict(BranchPc Pc) override;
  void update(BranchPc Pc, bool Taken) override;
  void reset() override;
  std::string name() const override { return "bimodal"; }

private:
  unsigned TableBits;
  std::vector<uint8_t> Counters; // 0..3; >=2 predicts taken.
};

/// GShare: global history XOR-folded into the table index.
class GSharePredictor : public BranchPredictor {
public:
  explicit GSharePredictor(unsigned TableBits = 10,
                           unsigned HistoryBits = 10);
  bool predict(BranchPc Pc) override;
  void update(BranchPc Pc, bool Taken) override;
  void reset() override;
  std::string name() const override { return "gshare"; }

private:
  unsigned TableBits;
  unsigned HistoryBits;
  uint64_t History = 0;
  std::vector<uint8_t> Counters;
};

/// Perceptron predictor (Jimenez & Lin, HPCA'01): per-branch weight vector
/// dotted with the global history.
class PerceptronPredictor : public BranchPredictor {
public:
  explicit PerceptronPredictor(unsigned TableBits = 8,
                               unsigned HistoryBits = 16);
  bool predict(BranchPc Pc) override;
  void update(BranchPc Pc, bool Taken) override;
  void reset() override;
  std::string name() const override { return "perceptron"; }

private:
  int32_t dot(BranchPc Pc) const;

  unsigned TableBits;
  unsigned HistoryBits;
  int32_t Threshold;
  uint64_t History = 0;
  std::vector<std::vector<int16_t>> Weights; // [table][history+1 (bias)]
};

/// Plays back a fixed decision sequence: the i-th predict() call returns
/// the i-th script bit, and \p Fallback once the script is exhausted. The
/// differential fuzzer enumerates scripts to cover every combination of
/// branch-prediction outcomes — the paper's soundness claim quantifies over
/// "the underlying strategies", and an adversarial script is the strongest
/// strategy there is. update() is a no-op; reset() rewinds the script.
class ScriptedPredictor : public BranchPredictor {
public:
  explicit ScriptedPredictor(std::vector<bool> Script, bool Fallback = false)
      : Script(std::move(Script)), Fallback(Fallback) {}
  bool predict(BranchPc) override {
    ++Calls;
    return Pos < Script.size() ? Script[Pos++] : Fallback;
  }
  void update(BranchPc, bool) override {}
  void reset() override { Pos = Calls = 0; }
  std::string name() const override;

  /// predict() calls served so far (script plus fallback).
  size_t decisionsUsed() const { return Calls; }

private:
  std::vector<bool> Script;
  bool Fallback;
  size_t Pos = 0;
  size_t Calls = 0;
};

/// Factory for the standard predictor zoo used by tests and benches.
std::vector<std::unique_ptr<BranchPredictor>> makeStandardPredictors();

} // namespace specai

#endif // SPECAI_PIPELINE_BRANCHPREDICTOR_H
