//===- SpecAI.h - Public umbrella header ------------------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single include exposing the whole public API:
///
/// \code
///   DiagnosticEngine Diags;
///   auto CP = compileSource(Source, Diags);
///   MustHitOptions Opts;            // speculative, JIT merging, 32 KB LRU
///   MustHitReport R = runMustHitAnalysis(*CP, Opts);
///   SideChannelReport Leaks = detectLeaks(*CP, R);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_SPECAI_H
#define SPECAI_SPECAI_H

#include "ai/SpeculativeEngine.h"
#include "ai/Vcfg.h"
#include "ai/WorklistEngine.h"
#include "analysis/AnalysisPipeline.h"
#include "analysis/SideChannel.h"
#include "analysis/Taint.h"
#include "analysis/Wcet.h"
#include "cache/CacheSim.h"
#include "cfg/Dominators.h"
#include "cfg/FlatCfg.h"
#include "cfg/LoopInfo.h"
#include "domain/CacheDomain.h"
#include "domain/CacheState.h"
#include "domain/IntervalDomain.h"
#include "driver/BatchRunner.h"
#include "fuzz/FuzzCampaign.h"
#include "fuzz/LoweringOracle.h"
#include "fuzz/ProgramGen.h"
#include "fuzz/RepairOracle.h"
#include "fuzz/SoundnessOracle.h"
#include "fuzz/StateDigest.h"
#include "ir/Interp.h"
#include "ir/Ir.h"
#include "ir/Lowering.h"
#include "ir/Verifier.h"
#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "memory/MemoryModel.h"
#include "pipeline/BranchPredictor.h"
#include "pipeline/SpeculativeCpu.h"
#include "repair/MitigationSynth.h"
#include "service/AnalysisPool.h"
#include "service/Client.h"
#include "service/Json.h"
#include "service/Protocol.h"
#include "service/Server.h"
#include "service/ServiceEngine.h"
#include "service/VerdictCache.h"
#include "support/Diagnostics.h"
#include "support/Rng.h"
#include "support/StateInterner.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "workloads/Workloads.h"

#endif // SPECAI_SPECAI_H
