//===- StateInterner.h - Hash-consing pool for abstract states --*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hash-consing pool for copy-on-write abstract states. The speculative
/// engine's PR/SS slot maps hold many structurally identical states per
/// (branch, color) — both colors of a site are seeded from the same branch
/// output, and re-drains regenerate the same states over and over.
/// Interning canonicalizes them onto one shared payload, so slot joins hit
/// the domain's shared-storage O(1) no-change fast path instead of walking
/// entries, and duplicate payload memory collapses.
///
/// Requirements on StateT: cheap copies that alias storage (copy-on-write
/// handles), `uint64_t structuralHash() const`, and structural
/// `operator==`. Methods instantiate lazily, so declaring an interner for
/// a state type without these hooks is harmless as long as intern() is
/// never called (the engines gate on the domain's capability).
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_SUPPORT_STATEINTERNER_H
#define SPECAI_SUPPORT_STATEINTERNER_H

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace specai {

/// Hash-consing pool of StateT values. Not thread-safe; one pool per
/// analysis run.
template <typename StateT> class StateInterner {
public:
  /// Returns the canonical value equal to \p S. The returned handle
  /// aliases the pooled representative's storage, so later copies and
  /// equality checks against other interned values are O(1).
  StateT intern(const StateT &S) {
    uint64_t H = S.structuralHash();
    std::vector<StateT> &Bucket = Pool[H];
    for (const StateT &Canon : Bucket)
      if (Canon == S) {
        ++HitCount;
        return Canon;
      }
    ++MissCount;
    if (States >= MaxStates)
      return S; // Pool is full: hand the input back un-pooled.
    ++States;
    Bucket.push_back(S);
    return Bucket.back();
  }

  /// Times intern() found an existing representative.
  uint64_t hits() const { return HitCount; }
  /// Times intern() saw a new structure.
  uint64_t misses() const { return MissCount; }
  /// Distinct states pooled.
  uint64_t size() const { return States; }

  /// Resets the pool to its freshly constructed state — including the
  /// hit/miss counters, so a long-lived process (the specaid daemon)
  /// reusing one interner across analyses reports per-run statistics
  /// rather than totals silently accumulated across unrelated requests.
  void clear() {
    Pool.clear();
    States = 0;
    HitCount = 0;
    MissCount = 0;
  }

private:
  /// Safety valve against pathological runs; generous next to real
  /// fixpoints, which stabilize on a few states per (node, color).
  static constexpr uint64_t MaxStates = 1 << 20;

  std::unordered_map<uint64_t, std::vector<StateT>> Pool;
  uint64_t HitCount = 0;
  uint64_t MissCount = 0;
  uint64_t States = 0;
};

} // namespace specai

#endif // SPECAI_SUPPORT_STATEINTERNER_H
