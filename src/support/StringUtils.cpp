//===- StringUtils.cpp ----------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <limits>

using namespace specai;

std::vector<std::string> specai::splitString(std::string_view Text, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Out.emplace_back(Text.substr(Start));
      return Out;
    }
    Out.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string_view specai::trimString(std::string_view Text) {
  size_t Begin = 0;
  while (Begin < Text.size() &&
         std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  size_t End = Text.size();
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::string specai::joinStrings(const std::vector<std::string> &Parts,
                                std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I != Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

bool specai::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

std::string specai::formatDouble(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::optional<unsigned> specai::parseUnsigned(std::string_view Text) {
  if (Text.empty())
    return std::nullopt;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return std::nullopt;
    Value = Value * 10 + static_cast<uint64_t>(C - '0');
    if (Value > std::numeric_limits<unsigned>::max())
      return std::nullopt;
  }
  return static_cast<unsigned>(Value);
}
