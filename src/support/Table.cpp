//===- Table.cpp ----------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>

using namespace specai;

TableWriter::TableWriter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {}

void TableWriter::addRow(std::vector<std::string> Row) {
  Row.resize(Headers.size());
  Rows.push_back(std::move(Row));
}

std::string TableWriter::str() const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t I = 0; I != Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I != Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto RenderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t I = 0; I != Row.size(); ++I) {
      if (I != 0)
        Line += "  ";
      Line += Row[I];
      Line.append(Widths[I] - Row[I].size(), ' ');
    }
    // Trim trailing padding.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    Line += '\n';
    return Line;
  };

  std::string Out = RenderRow(Headers);
  size_t Total = 0;
  for (size_t I = 0; I != Widths.size(); ++I)
    Total += Widths[I] + (I == 0 ? 0 : 2);
  Out.append(Total, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}
