//===- Parallel.cpp -------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "support/Parallel.h"

#include <algorithm>

using namespace specai;

namespace {
thread_local IntraPool *ActivePoolTL = nullptr;
thread_local bool InPoolWorkerTL = false;
} // namespace

IntraPool *IntraPool::activePool() { return ActivePoolTL; }

unsigned IntraPool::resolveJobs(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

IntraPool::Scope::Scope(IntraPool *Pool) : Prev(ActivePoolTL) {
  ActivePoolTL = Pool;
}

IntraPool::Scope::~Scope() { ActivePoolTL = Prev; }

IntraPool::IntraPool(unsigned Jobs,
                     std::function<std::shared_ptr<void>()> Init)
    : JobCount(std::max(1u, Jobs)), WorkerInit(std::move(Init)) {
  Workers.reserve(JobCount - 1);
  for (unsigned I = 1; I < JobCount; ++I)
    Workers.emplace_back([this] { workerMain(); });
}

IntraPool::~IntraPool() {
  {
    std::lock_guard<std::mutex> L(M);
    Stopping = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void IntraPool::workerMain() {
  InPoolWorkerTL = true;
  // Kept alive for the thread's lifetime (e.g. a CacheStateArenaScope so
  // payload recycling works on worker threads too).
  std::shared_ptr<void> Holder = WorkerInit ? WorkerInit() : nullptr;
  std::unique_lock<std::mutex> L(M);
  uint64_t Seen = 0;
  while (true) {
    WorkCv.wait(L, [&] { return Stopping || (Fn && Seq != Seen); });
    if (Stopping)
      return;
    Seen = Seq;
    ++ActiveWorkers;
    L.unlock();
    runItems();
    L.lock();
    if (--ActiveWorkers == 0 &&
        Next.load(std::memory_order_relaxed) >= Count)
      DoneCv.notify_all();
  }
}

void IntraPool::runItems() {
  for (;;) {
    size_t I = Next.fetch_add(1, std::memory_order_relaxed);
    if (I >= Count)
      return;
    try {
      (*Fn)(I);
    } catch (...) {
      std::lock_guard<std::mutex> L(M);
      if (!FirstErr)
        FirstErr = std::current_exception();
      // Abandon unclaimed items; claimed ones finish on their threads.
      Next.store(Count, std::memory_order_relaxed);
    }
  }
}

void IntraPool::run(size_t N, const std::function<void(size_t)> &F) {
  if (N == 0)
    return;
  if (N == 1 || JobCount <= 1 || InPoolWorkerTL || Busy) {
    for (size_t I = 0; I != N; ++I)
      F(I);
    return;
  }
  Busy = true;
  {
    std::lock_guard<std::mutex> L(M);
    Fn = &F;
    Count = N;
    Next.store(0, std::memory_order_relaxed);
    ++Seq;
  }
  WorkCv.notify_all();
  runItems();
  std::exception_ptr E;
  {
    std::unique_lock<std::mutex> L(M);
    DoneCv.wait(L, [&] {
      return ActiveWorkers == 0 &&
             Next.load(std::memory_order_relaxed) >= Count;
    });
    Fn = nullptr;
    E = FirstErr;
    FirstErr = nullptr;
  }
  Busy = false;
  if (E)
    std::rethrow_exception(E);
}
