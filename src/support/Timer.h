//===- Timer.h - Wall-clock timing for the bench harness --------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#ifndef SPECAI_SUPPORT_TIMER_H
#define SPECAI_SUPPORT_TIMER_H

#include <chrono>

namespace specai {

/// Measures wall-clock time from construction (or the last reset).
class Timer {
public:
  Timer() { reset(); }

  void reset() { Start = std::chrono::steady_clock::now(); }

  /// Elapsed seconds since the last reset.
  double seconds() const;

private:
  std::chrono::steady_clock::time_point Start;
};

} // namespace specai

#endif // SPECAI_SUPPORT_TIMER_H
