//===- Diagnostics.cpp ----------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace specai;

std::string Diagnostic::str() const {
  std::string Out;
  switch (Kind) {
  case DiagKind::Error:
    Out += "error: ";
    break;
  case DiagKind::Warning:
    Out += "warning: ";
    break;
  case DiagKind::Note:
    Out += "note: ";
    break;
  }
  if (Loc.isValid()) {
    Out += Loc.str();
    Out += ": ";
  }
  Out += Message;
  return Out;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
