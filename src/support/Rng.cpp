//===- Rng.cpp ------------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <cassert>

using namespace specai;

Rng::Rng(uint64_t Seed) {
  // SplitMix64 to expand the seed into two nonzero state words.
  auto SplitMix = [](uint64_t &X) {
    X += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  };
  uint64_t X = Seed;
  State0 = SplitMix(X);
  State1 = SplitMix(X);
  if (State0 == 0 && State1 == 0)
    State1 = 1;
}

uint64_t Rng::next() {
  uint64_t S1 = State0;
  uint64_t S0 = State1;
  uint64_t Result = S0 + S1;
  State0 = S0;
  S1 ^= S1 << 23;
  State1 = S1 ^ S0 ^ (S1 >> 18) ^ (S0 >> 5);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow(0) is meaningless");
  return next() % Bound;
}

int64_t Rng::nextRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "inverted range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  return Lo + static_cast<int64_t>(nextBelow(Span));
}

bool Rng::chance(uint64_t Num, uint64_t Den) {
  assert(Den != 0 && "zero denominator");
  return nextBelow(Den) < Num;
}
