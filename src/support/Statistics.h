//===- Statistics.h - Analysis statistics counters --------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named counters that the engines update while running (worklist
/// iterations, transfer applications, joins, spawned speculations). The
/// bench harness reads these to populate the paper's #Iteration/#Branch
/// columns.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_SUPPORT_STATISTICS_H
#define SPECAI_SUPPORT_STATISTICS_H

#include <cstdint>
#include <map>
#include <string>

namespace specai {

/// A bag of named uint64 counters.
class StatisticSet {
public:
  void increment(const std::string &Name, uint64_t By = 1) {
    Counters[Name] += By;
  }
  void set(const std::string &Name, uint64_t Value) { Counters[Name] = Value; }

  /// Value of \p Name, or zero if never touched.
  uint64_t get(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  void clear() { Counters.clear(); }

  const std::map<std::string, uint64_t> &all() const { return Counters; }

  /// One "name = value" line per counter, sorted by name.
  std::string str() const;

private:
  std::map<std::string, uint64_t> Counters;
};

} // namespace specai

#endif // SPECAI_SUPPORT_STATISTICS_H
