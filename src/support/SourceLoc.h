//===- SourceLoc.h - Source locations for diagnostics ----------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight line/column source locations attached to tokens, AST nodes,
/// and IR instructions so analysis reports can point back at mini-C source.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_SUPPORT_SOURCELOC_H
#define SPECAI_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace specai {

/// A position in a mini-C source buffer. Line/column are 1-based; a value of
/// zero in both fields denotes an unknown/synthesized location.
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  constexpr SourceLoc() = default;
  constexpr SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &RHS) const = default;

  /// Renders the location as "line:col", or "<unknown>" when invalid.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

} // namespace specai

#endif // SPECAI_SUPPORT_SOURCELOC_H
