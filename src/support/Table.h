//===- Table.h - ASCII table writer for experiment output -------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bench harness regenerates the paper's tables; this writer renders
/// them as aligned ASCII so bench output can be compared side by side with
/// the paper's rows.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_SUPPORT_TABLE_H
#define SPECAI_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace specai {

/// Builds an aligned ASCII table row by row.
class TableWriter {
public:
  explicit TableWriter(std::vector<std::string> Headers);

  /// Appends a data row; pads/truncates to the header width.
  void addRow(std::vector<std::string> Row);

  /// Number of data rows added so far.
  size_t rowCount() const { return Rows.size(); }

  /// Renders the table with a header separator line.
  std::string str() const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace specai

#endif // SPECAI_SUPPORT_TABLE_H
