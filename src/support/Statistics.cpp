//===- Statistics.cpp -----------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

using namespace specai;

std::string StatisticSet::str() const {
  std::string Out;
  for (const auto &[Name, Value] : Counters) {
    Out += Name;
    Out += " = ";
    Out += std::to_string(Value);
    Out += '\n';
  }
  return Out;
}
