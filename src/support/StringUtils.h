//===- StringUtils.h - Small string helpers ---------------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers used across the project: splitting, trimming, joining,
/// and fixed-width formatting for the table writer.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_SUPPORT_STRINGUTILS_H
#define SPECAI_SUPPORT_STRINGUTILS_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace specai {

/// Splits \p Text on \p Sep, keeping empty fields.
std::vector<std::string> splitString(std::string_view Text, char Sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trimString(std::string_view Text);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        std::string_view Sep);

/// Returns true if \p Text starts with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Formats a double with \p Precision digits after the decimal point.
std::string formatDouble(double Value, int Precision);

/// Parses \p Text as a base-10 unsigned integer. Returns nullopt on empty
/// input, any non-digit character (including a sign), or overflow.
std::optional<unsigned> parseUnsigned(std::string_view Text);

} // namespace specai

#endif // SPECAI_SUPPORT_STRINGUTILS_H
