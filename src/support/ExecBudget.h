//===- ExecBudget.h - Cooperative cancellation/budget token -----*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cooperative execution budget threaded from a service request down into
/// the fixed-point engines (docs/SERVICE.md, "Deadlines and budgets"). The
/// budget combines three independent cut-offs:
///
///   - a wall-clock deadline (steady_clock, so NTP steps cannot extend or
///     shrink a request's allowance),
///   - a step cap counted in worklist pops across every fixpoint the
///     request runs (baseline, speculative rounds, callee summaries), and
///   - an external cancel flag (the daemon's shutdown bit), so queued and
///     in-flight analyses abandon work promptly instead of draining.
///
/// The engines call chargeStep() once per worklist pop and exhausted() at
/// speculative-window boundaries. Exhaustion is *sticky*: once any cut-off
/// trips, every later check answers true, so a budget that expires deep in
/// a callee summary unwinds the whole request. Deadline and cancel-flag
/// polls are amortized to every 64th step; a step is ~a node transfer, so
/// the detection lag is microseconds against millisecond deadlines.
///
/// One worker thread owns a budget; only the cancel flag may be written
/// from another thread (it is an atomic owned by the caller and must
/// outlive the budget).
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_SUPPORT_EXECBUDGET_H
#define SPECAI_SUPPORT_EXECBUDGET_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace specai {

/// Why a budget tripped, for diagnostics and the service's error strings.
enum class BudgetTrip {
  None,
  Deadline,
  StepCap,
  Cancelled,
};

inline const char *budgetTripName(BudgetTrip T) {
  switch (T) {
  case BudgetTrip::None:
    return "none";
  case BudgetTrip::Deadline:
    return "deadline";
  case BudgetTrip::StepCap:
    return "step-cap";
  case BudgetTrip::Cancelled:
    return "cancelled";
  }
  return "none";
}

/// Cooperative cancellation token: deadline + step cap + external cancel.
class ExecBudget {
public:
  using Clock = std::chrono::steady_clock;

  ExecBudget() = default;

  /// \p TimeoutMs 0 = no deadline; \p MaxSteps 0 = no step cap;
  /// \p Cancel may be null (no external cancellation).
  ExecBudget(uint64_t TimeoutMs, uint64_t MaxSteps,
             const std::atomic<bool> *Cancel = nullptr)
      : Deadline(Clock::now() + std::chrono::milliseconds(TimeoutMs)),
        HasDeadline(TimeoutMs != 0), MaxSteps(MaxSteps), Cancel(Cancel) {}

  /// Counts one unit of work (a worklist pop). Returns true once the
  /// budget is exhausted. Deadline/cancel polls amortize to every 64th
  /// step; the step cap is exact.
  bool chargeStep() {
    if (Trip != BudgetTrip::None)
      return true;
    ++Steps;
    if (MaxSteps != 0 && Steps > MaxSteps) {
      Trip = BudgetTrip::StepCap;
      return true;
    }
    if ((Steps & 63) == 0)
      return exhausted();
    return false;
  }

  /// Polls deadline and cancel flag without charging a step (window
  /// boundaries, pre-enqueue checks). Sticky.
  bool exhausted() {
    if (Trip != BudgetTrip::None)
      return true;
    if (Cancel && Cancel->load(std::memory_order_relaxed)) {
      Trip = BudgetTrip::Cancelled;
      return true;
    }
    if (HasDeadline && Clock::now() >= Deadline) {
      Trip = BudgetTrip::Deadline;
      return true;
    }
    return false;
  }

  BudgetTrip trip() const { return Trip; }
  uint64_t steps() const { return Steps; }

private:
  Clock::time_point Deadline{};
  bool HasDeadline = false;
  uint64_t MaxSteps = 0;
  const std::atomic<bool> *Cancel = nullptr;
  uint64_t Steps = 0;
  BudgetTrip Trip = BudgetTrip::None;
};

} // namespace specai

#endif // SPECAI_SUPPORT_EXECBUDGET_H
