//===- Rng.h - Deterministic random number generation -----------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (xorshift128+) used by property tests and the
/// random program generator so failures reproduce from a seed alone.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_SUPPORT_RNG_H
#define SPECAI_SUPPORT_RNG_H

#include <cstdint>

namespace specai {

/// Deterministic xorshift128+ generator. Never use std::rand in the library;
/// all randomized behavior must be reproducible from a seed.
class Rng {
public:
  explicit Rng(uint64_t Seed);

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Uniform value in [Lo, Hi] inclusive. Requires Lo <= Hi.
  int64_t nextRange(int64_t Lo, int64_t Hi);

  /// True with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den);

private:
  uint64_t State0;
  uint64_t State1;
};

} // namespace specai

#endif // SPECAI_SUPPORT_RNG_H
