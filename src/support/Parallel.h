//===- Parallel.h - Deterministic intra-analysis worker pool ----*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IntraPool: a persistent worker pool for parallelism *inside* one
/// analysis (`--intra-jobs`), as opposed to the spawn-per-call
/// program-level fan-out of driver/BatchRunner.h.
///
/// Design rules (docs/PERFORMANCE.md, "Intra-analysis parallelism"):
///
///  1. Determinism is the caller's contract, concurrency is the pool's.
///     run(N, Fn) executes Fn(0..N-1) in unspecified order on unspecified
///     threads; callers only hand it *independent* items (per-set
///     partition merges, distinct memo-missing transfers, per-node result
///     folds) and keep every order-sensitive effect on the calling
///     thread. Analysis results are therefore bit-identical at any job
///     count — pinned by the jobs-invariance tests.
///  2. The pool is installed thread-locally (Scope / activePool), so deep
///     callees (CacheAbsState::joinInto) can opportunistically fan out
///     without threading a handle through every signature. No active pool
///     means serial execution everywhere.
///  3. Reentrancy degrades to inline. A worker that reaches a nested
///     run() (a partition-parallel join inside a batched transfer) just
///     loops inline; same for a second run() on the orchestrating thread.
///     One orchestrating thread per pool.
///  4. Workers are spawned once and parked on a condition variable between
///     runs; the engine's drain loop calls run() thousands of times, so
///     per-call thread spawning (the BatchRunner approach) would swamp the
///     win. WorkerInit lets the owner install per-thread state — the
///     analysis pipeline passes a CacheStateArenaScope factory so worker
///     threads recycle payloads too — without a support->domain
///     dependency.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_SUPPORT_PARALLEL_H
#define SPECAI_SUPPORT_PARALLEL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace specai {

class IntraPool {
public:
  /// The calling thread's active pool (null = run everything serially).
  static IntraPool *activePool();

  /// Resolves a --intra-jobs value: 0 means hardware concurrency.
  static unsigned resolveJobs(unsigned Requested);

  /// \p Jobs counts total parallelism including the orchestrating thread,
  /// so Jobs <= 1 spawns no workers. \p WorkerInit runs once per worker
  /// thread at startup; the returned handle stays alive for the thread's
  /// lifetime.
  explicit IntraPool(unsigned Jobs,
                     std::function<std::shared_ptr<void>()> WorkerInit = {});
  ~IntraPool();
  IntraPool(const IntraPool &) = delete;
  IntraPool &operator=(const IntraPool &) = delete;

  unsigned jobs() const { return JobCount; }

  /// Runs Fn(0..Count-1) across the workers and the calling thread;
  /// returns once every index completed. Reentrant calls run inline. The
  /// first exception thrown by an item is rethrown here after the
  /// remaining unclaimed items are abandoned.
  void run(size_t Count, const std::function<void(size_t)> &Fn);

  /// RAII: installs \p Pool (may be null) as the thread's active pool and
  /// restores the previous one on destruction.
  class Scope {
  public:
    explicit Scope(IntraPool *Pool);
    ~Scope();
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    IntraPool *Prev;
  };

private:
  void workerMain();
  /// Claims and executes items until none remain; shared by workers and
  /// the orchestrating thread.
  void runItems();

  unsigned JobCount;
  std::function<std::shared_ptr<void>()> WorkerInit;
  std::vector<std::thread> Workers;

  std::mutex M;
  std::condition_variable WorkCv, DoneCv;
  /// Non-null exactly while a run is in flight; guarded by M for the
  /// wake-up predicate, stable for the run's duration thereafter.
  const std::function<void(size_t)> *Fn = nullptr;
  size_t Count = 0;
  std::atomic<size_t> Next{0};
  size_t ActiveWorkers = 0; // Guarded by M.
  uint64_t Seq = 0;         // Guarded by M; run generation for wake-ups.
  bool Stopping = false;    // Guarded by M.
  bool Busy = false; // Orchestrating thread only: reentrancy guard.
  std::exception_ptr FirstErr; // Guarded by M.
};

} // namespace specai

#endif // SPECAI_SUPPORT_PARALLEL_H
