//===- Timer.cpp ----------------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"

using namespace specai;

double Timer::seconds() const {
  auto Now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(Now - Start).count();
}
