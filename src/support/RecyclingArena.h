//===- RecyclingArena.h - Thread-local object recycling pools ---*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-analysis allocation arena for hot-path payload objects — the
/// piece that retires the remaining steady-state allocations of the packed
/// cache-state representation (docs/PERFORMANCE.md, "Arena lifetime").
///
/// Design constraints, in order:
///
///  1. Objects may *outlive* the arena. Analysis results (MustHitReport's
///     per-node state vectors) carry payloads out of runMustHitAnalysis,
///     past the scope that owned the arena. So the arena is a *recycler*,
///     not an owner of live objects: every object is an ordinary heap
///     allocation (`new T`), individually deletable, and the arena merely
///     keeps a freelist of retired ones to hand back instead of malloc.
///  2. Recycled objects keep their internal buffers. The freelist returns
///     objects as-is (no reset); the allocation site overwrites the fields
///     it needs, so `std::vector` members retain their heap capacity and a
///     fixpoint's clone-transfer-join steady state stops allocating
///     entirely once the high-water mark is reached.
///  3. Thread safety by thread locality. The active arena is a
///     thread_local pointer; each worker thread (support/Parallel.h) and
///     each analysis scope activates its own. Objects released on a thread
///     with no (or a different) active arena fall back to `delete` /
///     recycle-there — always safe, because every object is heap-born.
///
/// Usage:
///   RecyclingArena<Payload>::Scope Arena;        // activate for this thread
///   Payload *P = RecyclingArena<Payload>::allocateFromActive();
///   ...
///   RecyclingArena<Payload>::releaseToActive(P); // recycle or delete
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_SUPPORT_RECYCLINGARENA_H
#define SPECAI_SUPPORT_RECYCLINGARENA_H

#include <cstddef>
#include <vector>

namespace specai {

template <typename T> class RecyclingArena {
public:
  /// Freelist cap: bounds the memory a long-lived arena can pin. Retired
  /// objects past the cap are deleted instead of recycled.
  static constexpr size_t MaxFree = 1024;

  RecyclingArena() = default;
  RecyclingArena(const RecyclingArena &) = delete;
  RecyclingArena &operator=(const RecyclingArena &) = delete;
  ~RecyclingArena() {
    for (T *P : Free)
      delete P;
  }

  /// A recycled object (contents unspecified — the caller overwrites), or
  /// a fresh default-constructed heap object.
  T *allocate() {
    if (Free.empty())
      return new T();
    T *P = Free.back();
    Free.pop_back();
    return P;
  }

  /// Takes ownership of \p P: onto the freelist, or deleted past the cap.
  void retire(T *P) {
    if (Free.size() >= MaxFree) {
      delete P;
      return;
    }
    Free.push_back(P);
  }

  /// The thread's active arena (null when none).
  static RecyclingArena *&active() {
    thread_local RecyclingArena *Active = nullptr;
    return Active;
  }

  /// Allocates from the thread's active arena, or the heap when none.
  static T *allocateFromActive() {
    RecyclingArena *A = active();
    return A ? A->allocate() : new T();
  }

  /// Retires to the thread's active arena, or deletes when none.
  static void releaseToActive(T *P) {
    if (RecyclingArena *A = active())
      A->retire(P);
    else
      delete P;
  }

  /// RAII activation: installs a fresh arena as the thread's active one,
  /// restoring the previous (usually null) on exit. Nesting is fine; the
  /// inner arena simply shadows the outer for its lifetime.
  class Scope {
  public:
    Scope() : Prev(active()) { active() = &Pool; }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;
    ~Scope() { active() = Prev; }

  private:
    RecyclingArena Pool;
    RecyclingArena *Prev;
  };

private:
  std::vector<T *> Free;
};

} // namespace specai

#endif // SPECAI_SUPPORT_RECYCLINGARENA_H
