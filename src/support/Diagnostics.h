//===- Diagnostics.h - Error collection for the frontend --------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A diagnostic engine that accumulates errors and warnings instead of
/// throwing. The library never uses exceptions; callers inspect the engine
/// after each phase (lex, parse, sema, lowering) and bail out on errors.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_SUPPORT_DIAGNOSTICS_H
#define SPECAI_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace specai {

/// Severity of a reported diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported problem with its location and rendered message.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;

  /// Renders as "error: 3:14: message" in the LLVM style (lowercase first
  /// word, no trailing period).
  std::string str() const;
};

/// Collects diagnostics across compilation phases.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic, one per line.
  std::string str() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace specai

#endif // SPECAI_SUPPORT_DIAGNOSTICS_H
