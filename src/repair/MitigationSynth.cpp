//===- MitigationSynth.cpp ------------------------------------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "repair/MitigationSynth.h"

#include "memory/MemoryModel.h"

#include <algorithm>
#include <map>
#include <set>

using namespace specai;

const char *specai::repairFaultName(RepairFault F) {
  switch (F) {
  case RepairFault::None:
    return "none";
  case RepairFault::FenceDropped:
    return "fence-dropped";
  case RepairFault::CostUnderreported:
    return "cost-underreported";
  case RepairFault::ClampIgnored:
    return "clamp-ignored";
  case RepairFault::UnsoundHoist:
    return "unsound-hoist";
  }
  return "none";
}

bool specai::parseRepairFault(const std::string &Name, RepairFault &Out) {
  if (Name == "none")
    Out = RepairFault::None;
  else if (Name == "fence-dropped")
    Out = RepairFault::FenceDropped;
  else if (Name == "cost-underreported")
    Out = RepairFault::CostUnderreported;
  else if (Name == "clamp-ignored")
    Out = RepairFault::ClampIgnored;
  else if (Name == "unsound-hoist")
    Out = RepairFault::UnsoundHoist;
  else
    return false;
  return true;
}

const char *specai::mitigationKindName(MitigationKind K) {
  switch (K) {
  case MitigationKind::Clamp:
    return "clamp";
  case MitigationKind::Fence:
    return "fence";
  case MitigationKind::Hoist:
    return "hoist";
  case MitigationKind::Preload:
    return "preload";
  }
  return "?";
}

std::string Mitigation::str(const Program &P) const {
  std::string Out = mitigationKindName(Kind);
  switch (Kind) {
  case MitigationKind::Clamp:
    Out += " site " + std::to_string(Site) + " to depth " +
           std::to_string(Depth);
    break;
  case MitigationKind::Fence:
    Out += " at bb" + std::to_string(Block);
    break;
  case MitigationKind::Hoist:
  case MitigationKind::Preload:
    Out += " '";
    Out += Var < P.Vars.size() ? P.Vars[Var].Name : "<unknown>";
    Out += "'";
    if (Kind == MitigationKind::Preload)
      Out += " before node " + std::to_string(Node);
    break;
  }
  Out += " (cost " + std::to_string(Cost) + ")";
  return Out;
}

namespace {

/// A clamp pinned to patched-program coordinates: the site branch's
/// (block, instruction index) after insertion shifting, plus the depth.
struct ClampAt {
  BlockId Block = InvalidBlock;
  uint32_t InstIdx = 0;
  uint32_t Depth = 0;
};

/// Applies \p Set to \p Orig. Insertions (fences, preloads, hoist
/// initializers) never change block ids — branch targets stay valid — so
/// the rewrite is purely local. \p DropInserted emits the FenceDropped
/// fault: every fence and preload insertion is silently omitted (hoist
/// rewrites survive; dropping their initializers would change semantics
/// the *search* never claimed).
Program applyMitigations(const Program &Orig, const FlatCfg &G,
                         const CacheConfig &Cache,
                         const std::vector<Mitigation> &Set,
                         bool DropInserted, std::vector<ClampAt> &ClampsOut) {
  Program P = Orig;
  ClampsOut.clear();

  // Hoists first: they allocate registers and rewrite accesses in place.
  std::map<VarId, RegId> Hoisted;
  for (const Mitigation &M : Set) {
    if (M.Kind != MitigationKind::Hoist || Hoisted.count(M.Var))
      continue;
    RegId R = P.NumRegs++;
    Hoisted.emplace(M.Var, R);
    P.RegGlobals.push_back(
        {P.Vars[M.Var].Name, R, P.Vars[M.Var].IsSecret});
  }
  if (!Hoisted.empty()) {
    for (BasicBlock &B : P.Blocks) {
      for (Instruction &I : B.Insts) {
        if (!I.accessesMemory())
          continue;
        auto It = Hoisted.find(I.Var);
        if (It == Hoisted.end())
          continue;
        if (I.Op == Opcode::Load) {
          // load r, v  ->  mov r, vreg
          Instruction Mov;
          Mov.Op = Opcode::Mov;
          Mov.Loc = I.Loc;
          Mov.Dst = I.Dst;
          Mov.A = Operand::reg(It->second);
          I = Mov;
        } else {
          // store v, x  ->  mov vreg, x
          Instruction Mov;
          Mov.Op = Opcode::Mov;
          Mov.Loc = I.Loc;
          Mov.Dst = It->second;
          Mov.A = I.A;
          I = Mov;
        }
      }
    }
  }

  // Collect insertions as (block, original index, instructions inserted
  // *before* that index). Map order makes the emission deterministic.
  std::map<std::pair<BlockId, uint32_t>, std::vector<Instruction>> Inserts;

  // Hoist initializers: globals with initializers must start with their
  // value in the register (the machine zero-initializes registers, so
  // uninitialized hoists need nothing).
  for (const auto &[Var, Reg] : Hoisted) {
    const MemVar &V = Orig.Vars[Var];
    if (!V.HasInit)
      continue;
    Instruction Mov;
    Mov.Op = Opcode::Mov;
    Mov.Dst = Reg;
    Mov.A = Operand::imm(V.Init.empty() ? 0 : V.Init[0]);
    Inserts[{Program::EntryBlock, 0}].push_back(Mov);
  }

  if (!DropInserted) {
    RegId Scratch = InvalidReg;
    for (const Mitigation &M : Set) {
      if (M.Kind == MitigationKind::Fence) {
        Instruction F;
        F.Op = Opcode::Fence;
        Inserts[{M.Block, 0}].push_back(F);
      } else if (M.Kind == MitigationKind::Preload) {
        if (Scratch == InvalidReg)
          Scratch = P.NumRegs++;
        const MemVar &V = Orig.Vars[M.Var];
        uint64_t Lines =
            (V.sizeInBytes() + Cache.LineSize - 1) / Cache.LineSize;
        uint64_t ElemsPerLine = std::max<uint64_t>(
            1, Cache.LineSize / std::max<uint32_t>(1, V.ElemSize));
        std::vector<Instruction> &At =
            Inserts[{G.blockOf(M.Node), G.instIndexOf(M.Node)}];
        for (uint64_t Line = 0; Line != Lines; ++Line) {
          Instruction L;
          L.Op = Opcode::Load;
          L.Loc = G.inst(M.Node).Loc;
          L.Dst = Scratch;
          L.Var = M.Var;
          if (V.NumElements > 1)
            L.Index = Operand::imm(
                static_cast<int64_t>(Line * ElemsPerLine));
          At.push_back(L);
        }
      }
    }
  }

  // Splice, back to front per block so earlier indices stay valid.
  for (auto It = Inserts.rbegin(); It != Inserts.rend(); ++It) {
    const auto &[Where, Insts] = *It;
    std::vector<Instruction> &Body = P.Blocks[Where.first].Insts;
    uint32_t At = std::min<uint32_t>(Where.second, Body.size());
    Body.insert(Body.begin() + At, Insts.begin(), Insts.end());
  }

  // Clamp coordinates shift by the insertions that landed at or before
  // the branch within its block.
  for (const Mitigation &M : Set) {
    if (M.Kind != MitigationKind::Clamp)
      continue;
    BlockId B = G.blockOf(M.Node);
    uint32_t Idx = G.instIndexOf(M.Node);
    uint32_t Shift = 0;
    for (const auto &[Where, Insts] : Inserts)
      if (Where.first == B && Where.second <= Idx)
        Shift += Insts.size();
    ClampsOut.push_back({B, Idx + Shift, M.Depth});
  }
  return P;
}

/// One evaluated mitigation set: patched analyses plus verdicts.
struct EvalOutcome {
  std::unique_ptr<CompiledProgram> CP;
  std::vector<uint32_t> SiteClamps; ///< Patched-plan parallel.
  uint64_t Leaks = 0;
  uint64_t Wcet = 0;
  bool BudgetExceeded = false;
  /// The patched program failed to recompile — a synthesizer bug, never a
  /// search outcome; aborts the synthesis with RepairResult::Error.
  bool CompileFailed = false;
};

/// Maps \p Clamps onto \p CP's SpecPlan. Clamps whose branch left the
/// plan (a hoist can make a condition register-only) are dropped: the
/// engine never speculates there anyway.
std::vector<uint32_t> mapClamps(const CompiledProgram &CP,
                                const std::vector<ClampAt> &Clamps) {
  std::vector<uint32_t> Out(CP.Plan.siteCount(), UINT32_MAX);
  for (const ClampAt &C : Clamps) {
    NodeId Br = CP.G.nodeAt(C.Block, C.InstIdx);
    for (size_t Site = 0; Site != CP.Plan.siteCount(); ++Site)
      if (CP.Plan.sites()[Site].Branch == Br)
        Out[Site] = std::min(Out[Site], C.Depth);
  }
  return Out;
}

bool anyClamped(const std::vector<uint32_t> &Clamps) {
  for (uint32_t C : Clamps)
    if (C != UINT32_MAX)
      return true;
  return false;
}

/// Compiles and analyzes \p Orig patched with \p Set.
EvalOutcome evaluateSet(const Program &Orig, const FlatCfg &G,
                        const RepairOptions &Options,
                        const std::vector<Mitigation> &Set,
                        unsigned &Reanalyses) {
  EvalOutcome Out;
  std::vector<ClampAt> Clamps;
  Program Patched = applyMitigations(Orig, G, Options.Analysis.Cache, Set,
                                     /*DropInserted=*/false, Clamps);
  Out.CP = compileProgram(std::move(Patched));
  if (!Out.CP) {
    Out.CompileFailed = true;
    return Out;
  }
  Out.SiteClamps = mapClamps(*Out.CP, Clamps);

  MustHitOptions MO = Options.Analysis;
  if (anyClamped(Out.SiteClamps))
    MO.SiteDepthClamp = Out.SiteClamps;
  MustHitReport R = runMustHitAnalysis(*Out.CP, MO);
  ++Reanalyses;
  if (R.BudgetExceeded) {
    Out.BudgetExceeded = true;
    return Out;
  }
  Out.Leaks = detectLeaks(*Out.CP, R).Leaks.size();
  Out.Wcet = estimateWcet(*Out.CP, R, Options.Wcet).WorstCaseCycles;
  return Out;
}

/// Deterministic candidate order: cheapest first, menu rank and site/node
/// ids breaking ties.
bool candidateLess(const Mitigation &A, const Mitigation &B) {
  if (A.Cost != B.Cost)
    return A.Cost < B.Cost;
  if (A.Kind != B.Kind)
    return static_cast<uint8_t>(A.Kind) < static_cast<uint8_t>(B.Kind);
  if (A.Site != B.Site)
    return A.Site < B.Site;
  if (A.Block != B.Block)
    return A.Block < B.Block;
  if (A.Var != B.Var)
    return A.Var < B.Var;
  return A.Node < B.Node;
}

/// The candidate menu for \p CP given its initial leak report.
std::vector<Mitigation>
generateCandidates(const CompiledProgram &CP, const MemoryModel &MM,
                   const SideChannelReport &Leaks,
                   const RepairOptions &Options) {
  const Program &P = *CP.P;
  std::vector<Mitigation> Out;

  // Clamps: one per speculation site, at the floor depth. Depth 0 would
  // be a fence in disguise; real front ends always fetch something, so
  // only a fence may kill a window outright.
  for (uint32_t Site = 0; Site != CP.Plan.siteCount(); ++Site) {
    Mitigation M;
    M.Kind = MitigationKind::Clamp;
    M.Site = Site;
    M.Depth = 1;
    M.Node = CP.Plan.sites()[Site].Branch;
    Out.push_back(M);
  }

  // Fences: one per distinct mispredicted-path entry block.
  std::set<BlockId> FenceBlocks;
  for (const SpecSite &S : CP.Plan.sites()) {
    if (S.TakenEntry != InvalidNode)
      FenceBlocks.insert(CP.G.blockOf(S.TakenEntry));
    if (S.FallEntry != InvalidNode)
      FenceBlocks.insert(CP.G.blockOf(S.FallEntry));
  }
  for (BlockId B : FenceBlocks) {
    Mitigation M;
    M.Kind = MitigationKind::Fence;
    M.Block = B;
    Out.push_back(M);
  }

  // Hoists: accessed scalars (the UnsoundHoist fault drops the scalar
  // guard, which the repair oracle's equivalence replay must catch).
  std::vector<bool> Accessed(P.Vars.size(), false);
  for (const BasicBlock &B : P.Blocks)
    for (const Instruction &I : B.Insts)
      if (I.accessesMemory() && I.Var < Accessed.size())
        Accessed[I.Var] = true;
  for (VarId V = 0; V != P.Vars.size(); ++V) {
    if (!Accessed[V])
      continue;
    if (P.Vars[V].NumElements != 1 &&
        Options.Fault != RepairFault::UnsoundHoist)
      continue;
    Mitigation M;
    M.Kind = MitigationKind::Hoist;
    M.Var = V;
    Out.push_back(M);
  }

  // Preloads: one per leak site whose array can fit in the cache at all;
  // whether residency actually survives to the access is the
  // re-analysis's call.
  std::set<NodeId> PreloadNodes;
  for (const LeakSite &L : Leaks.Leaks) {
    if (L.Node == InvalidNode || !PreloadNodes.insert(L.Node).second)
      continue;
    if (MM.numBlocksOf(L.Var) > Options.Analysis.Cache.NumLines)
      continue;
    Mitigation M;
    M.Kind = MitigationKind::Preload;
    M.Var = L.Var;
    M.Node = L.Node;
    Out.push_back(M);
  }
  return Out;
}

} // namespace

RepairResult specai::synthesizeRepairs(const CompiledProgram &CP,
                                       const RepairOptions &Options) {
  RepairResult Res;
  Res.Patched = *CP.P;
  if (CP.Mode != LoweringMode::InlineUnroll || !CP.Callees.empty()) {
    Res.Error = "repair synthesis requires an InlineUnroll program";
    return Res;
  }
  if (!Options.Analysis.SiteDepthClamp.empty()) {
    Res.Error = "RepairOptions::Analysis.SiteDepthClamp must be empty";
    return Res;
  }

  // Initial verdicts: the speculative report (leaks, WCET baseline) and
  // the non-speculative baseline for the SpeculationOnly labeling.
  MustHitReport R = runMustHitAnalysis(CP, Options.Analysis);
  ++Res.Reanalyses;
  if (R.BudgetExceeded) {
    Res.BudgetExceeded = true;
    return Res;
  }
  SideChannelReport Leaks = detectLeaks(CP, R);
  if (Options.Analysis.Speculative) {
    MustHitOptions NonSpecO = Options.Analysis;
    NonSpecO.Speculative = false;
    MustHitReport NonSpec = runMustHitAnalysis(CP, NonSpecO);
    ++Res.Reanalyses;
    if (NonSpec.BudgetExceeded) {
      Res.BudgetExceeded = true;
      return Res;
    }
    SideChannelReport NonSpecLeaks = detectLeaks(CP, NonSpec);
    Res.SpecOnlyLeaksBefore = annotateSpeculationOnly(Leaks, NonSpecLeaks);
  }
  Res.LeaksBefore = Leaks.Leaks.size();
  Res.WcetBefore = estimateWcet(CP, R, Options.Wcet).WorstCaseCycles;
  Res.WcetAfter = Res.WcetBefore;
  Res.SiteClamps.assign(CP.Plan.siteCount(), UINT32_MAX);
  if (Res.LeaksBefore == 0) {
    Res.Repaired = true;
    return Res;
  }

  MemoryModel MM(*CP.P, Options.Analysis.Cache);
  std::vector<Mitigation> Candidates =
      generateCandidates(CP, MM, Leaks, Options);
  Res.Candidates = Candidates.size();

  // Cost-annotate each candidate alone.
  for (Mitigation &M : Candidates) {
    EvalOutcome E = evaluateSet(*CP.P, CP.G, Options, {M}, Res.Reanalyses);
    if (E.BudgetExceeded || E.CompileFailed) {
      Res.BudgetExceeded = E.BudgetExceeded;
      if (E.CompileFailed)
        Res.Error = "patched program failed to recompile";
      return Res;
    }
    M.Cost = E.Wcet > Res.WcetBefore ? E.Wcet - Res.WcetBefore : 0;
  }
  std::sort(Candidates.begin(), Candidates.end(), candidateLess);

  std::vector<Mitigation> Chosen;
  uint64_t ChosenLeaks = Res.LeaksBefore;

  if (Candidates.size() <= Options.ExactSearchLimit &&
      !Candidates.empty()) {
    // Exact: enumerate subsets in ascending (total cost, size) order; the
    // first leak-free subset is a true minimum-cost repair.
    Res.UsedExactSearch = true;
    struct Subset {
      uint64_t Cost;
      unsigned Size;
      uint32_t Mask;
    };
    std::vector<Subset> Subsets;
    for (uint32_t Mask = 1; Mask < (1u << Candidates.size()); ++Mask) {
      uint64_t Cost = 0;
      unsigned Size = 0;
      for (size_t I = 0; I != Candidates.size(); ++I)
        if (Mask & (1u << I)) {
          Cost += Candidates[I].Cost;
          ++Size;
        }
      Subsets.push_back({Cost, Size, Mask});
    }
    std::sort(Subsets.begin(), Subsets.end(),
              [](const Subset &A, const Subset &B) {
                if (A.Cost != B.Cost)
                  return A.Cost < B.Cost;
                if (A.Size != B.Size)
                  return A.Size < B.Size;
                return A.Mask < B.Mask;
              });
    for (const Subset &S : Subsets) {
      std::vector<Mitigation> Set;
      for (size_t I = 0; I != Candidates.size(); ++I)
        if (S.Mask & (1u << I))
          Set.push_back(Candidates[I]);
      EvalOutcome E = evaluateSet(*CP.P, CP.G, Options, Set, Res.Reanalyses);
      if (E.BudgetExceeded || E.CompileFailed) {
        Res.BudgetExceeded = E.BudgetExceeded;
        if (E.CompileFailed)
          Res.Error = "patched program failed to recompile";
        return Res;
      }
      if (E.Leaks == 0) {
        Chosen = std::move(Set);
        ChosenLeaks = 0;
        break;
      }
    }
  } else {
    // Greedy: repeatedly add the cheapest candidate that strictly shrinks
    // the leak count under full re-analysis, then prune.
    std::vector<bool> InSet(Candidates.size(), false);
    bool Progress = true;
    while (ChosenLeaks > 0 && Progress) {
      Progress = false;
      for (size_t I = 0; I != Candidates.size(); ++I) {
        if (InSet[I])
          continue;
        std::vector<Mitigation> Trial = Chosen;
        Trial.push_back(Candidates[I]);
        EvalOutcome E =
            evaluateSet(*CP.P, CP.G, Options, Trial, Res.Reanalyses);
        if (E.BudgetExceeded || E.CompileFailed) {
          Res.BudgetExceeded = E.BudgetExceeded;
          if (E.CompileFailed)
            Res.Error = "patched program failed to recompile";
          return Res;
        }
        if (E.Leaks < ChosenLeaks) {
          Chosen = std::move(Trial);
          ChosenLeaks = E.Leaks;
          InSet[I] = true;
          Progress = true;
          break;
        }
      }
    }
    if (ChosenLeaks > 0 && !Candidates.empty()) {
      // No single addition helped strictly, but a combination may (a site
      // leaking through both wrong paths needs both fences before the
      // count drops). Fall back to the whole menu; the prune pass below
      // carves a redundant set back down.
      EvalOutcome E =
          evaluateSet(*CP.P, CP.G, Options, Candidates, Res.Reanalyses);
      if (E.BudgetExceeded || E.CompileFailed) {
        Res.BudgetExceeded = E.BudgetExceeded;
        if (E.CompileFailed)
          Res.Error = "patched program failed to recompile";
        return Res;
      }
      if (E.Leaks == 0) {
        Chosen = Candidates;
        ChosenLeaks = 0;
      }
    }
    // Prune accepted mitigations made redundant by later ones: drop the
    // costliest removable member, restart until nothing is removable.
    bool Pruned = ChosenLeaks == 0 && Chosen.size() > 1;
    while (Pruned) {
      Pruned = false;
      std::vector<size_t> Order(Chosen.size());
      for (size_t I = 0; I != Order.size(); ++I)
        Order[I] = I;
      std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
        return Chosen[B].Cost < Chosen[A].Cost;
      });
      for (size_t Victim : Order) {
        std::vector<Mitigation> Trial;
        for (size_t I = 0; I != Chosen.size(); ++I)
          if (I != Victim)
            Trial.push_back(Chosen[I]);
        EvalOutcome E =
            evaluateSet(*CP.P, CP.G, Options, Trial, Res.Reanalyses);
        if (E.BudgetExceeded || E.CompileFailed) {
          Res.BudgetExceeded = E.BudgetExceeded;
          if (E.CompileFailed)
            Res.Error = "patched program failed to recompile";
          return Res;
        }
        if (E.Leaks == 0) {
          Chosen = std::move(Trial);
          Pruned = Chosen.size() > 1;
          break;
        }
      }
    }
  }

  if (ChosenLeaks != 0) {
    // Unrepairable under this menu; report honestly.
    Res.LeaksAfter = ChosenLeaks;
    return Res;
  }

  // Final honest evaluation of the chosen set (verdicts the oracle holds
  // the synthesizer to).
  std::sort(Chosen.begin(), Chosen.end(), candidateLess);
  EvalOutcome Final =
      evaluateSet(*CP.P, CP.G, Options, Chosen, Res.Reanalyses);
  if (Final.BudgetExceeded || Final.CompileFailed) {
    Res.BudgetExceeded = Final.BudgetExceeded;
    if (Final.CompileFailed)
      Res.Error = "patched program failed to recompile";
    return Res;
  }
  Res.Repaired = true;
  Res.LeaksAfter = Final.Leaks;
  Res.WcetAfter = Final.Wcet;
  Res.Applied = Chosen;

  // Emission, where the injected repair faults live: the *reported*
  // verdicts above came from the honest search, but what leaves the
  // synthesizer is the patched program and its clamps.
  std::vector<ClampAt> Clamps;
  Res.Patched = applyMitigations(
      *CP.P, CP.G, Options.Analysis.Cache, Chosen,
      /*DropInserted=*/Options.Fault == RepairFault::FenceDropped, Clamps);
  std::unique_ptr<CompiledProgram> Emitted = compileProgram(Res.Patched);
  if (!Emitted) {
    Res.Repaired = false;
    Res.Error = "patched program failed to recompile";
    return Res;
  }
  Res.SiteClamps = Options.Fault == RepairFault::ClampIgnored
                       ? std::vector<uint32_t>(Emitted->Plan.siteCount(),
                                               UINT32_MAX)
                       : mapClamps(*Emitted, Clamps);
  if (Options.Fault == RepairFault::CostUnderreported) {
    Res.WcetAfter = Res.WcetBefore;
    for (Mitigation &M : Res.Applied)
      M.Cost = 0;
  }
  return Res;
}
