//===- MitigationSynth.h - Minimum-cost leak repair synthesis ---*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The remediation layer (docs/MITIGATION.md): given an analyzed program
/// whose leak detector reports secret-indexed accesses that are not
/// leak-free, propose per-site mitigations from a small cost-annotated
/// menu, search for a minimum-cost set whose *re-analysis* proves every
/// reported site leak-free, and emit the patched program.
///
/// The menu:
///
///  - **Fence** — insert a `fence` instruction (ir/Ir.h) at the entry of
///    one mispredicted path of a speculation site. The window dies at the
///    fence in both semantics (SpeculativeCpu stops fetching;
///    the abstract engines drain the speculative flow), so post-rollback
///    cache pollution from that path disappears entirely. The only
///    mitigation that reduces a window to zero.
///  - **Clamp** — cap one site's speculation depth (MustHitOptions::
///    SiteDepthClamp, floor 1: hardware always fetches something past an
///    unresolved branch). Concretely enforced as a SpeculativeCpu window
///    override of the same depth at the site branch. Costs no committed
///    cycles, so it dominates a fence whenever one wrong-path instruction
///    is harmless.
///  - **Hoist** — promote a scalar memory variable to a `reg` global
///    (the paper's Figure 2 `reg char k`): its loads/stores become
///    register moves, invisible to the cache, so its accesses stop
///    evicting the lines a secret-indexed access needs resident. Secret
///    scalars keep their taint seed (RegGlobal::IsSecret).
///  - **Preload** — insert constant-index loads covering every line of
///    the leaky access's array immediately before the access (the
///    paper's own Figure 2 countermeasure): the access becomes a must-hit
///    for every secret, i.e. architecturally uniform. Applicable when the
///    array fits in the cache; the re-analysis is the judge.
///
/// Cost model: a mitigation's cost is the `estimateWcet` delta of applying
/// it alone (floored at 0); the chosen set is re-costed as a whole, so
/// RepairResult::WcetAfter is the bound the repaired program must honor —
/// the fuzzer's RepairOracle replays it on the concrete cycle-charging
/// pipeline and asserts committed cycles never exceed it.
///
/// Search: exact subset enumeration in ascending total cost when the
/// candidate set is small (<= RepairOptions::ExactSearchLimit), greedy
/// cheapest-first with a pruning pass otherwise. Both are deterministic:
/// ties break on (cost, kind, site/node id), never on pointers or time.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_REPAIR_MITIGATIONSYNTH_H
#define SPECAI_REPAIR_MITIGATIONSYNTH_H

#include "analysis/AnalysisPipeline.h"
#include "analysis/SideChannel.h"
#include "analysis/Wcet.h"

#include <string>
#include <vector>

namespace specai {

/// Deliberate, test-only faults in the *repair* layer — the synthesizer
/// that proposes mitigations and emits the patched artifacts. The
/// differential repair oracle's self-test (`specai-fuzz --selftest
/// repair`) injects one of these and demands a concrete counterexample,
/// extending the EngineFault/VerdictFault/LoweringFault ladder one layer
/// further up: an oracle that cannot see a broken repair proves nothing.
/// Never set outside tests.
enum class RepairFault : uint8_t {
  None,
  /// The emitted program silently omits every inserted instruction
  /// (fences and preloads); the search still believed they were there.
  FenceDropped,
  /// The reported WCET ignores the repair: WcetAfter echoes WcetBefore
  /// and every mitigation claims cost 0.
  CostUnderreported,
  /// The emitted per-site clamps are cleared; the search still analyzed
  /// with them in place.
  ClampIgnored,
  /// The hoist precondition (scalars only) is skipped: arrays collapse
  /// into a single register, changing architectural semantics.
  UnsoundHoist,
};

const char *repairFaultName(RepairFault F);
/// Parses a repair fault name; returns false on unknown names.
bool parseRepairFault(const std::string &Name, RepairFault &Out);

/// The mitigation menu (ordered: the tie-break rank of equal-cost
/// candidates follows this declaration order).
enum class MitigationKind : uint8_t { Clamp, Fence, Hoist, Preload };

const char *mitigationKindName(MitigationKind K);

/// One candidate (or applied) mitigation, in *original-program*
/// coordinates.
struct Mitigation {
  MitigationKind Kind = MitigationKind::Fence;
  /// Fence: block whose entry gets the fence (a mispredicted-path entry
  /// of some speculation site).
  BlockId Block = InvalidBlock;
  /// Clamp: SpecPlan site index of the original program.
  uint32_t Site = 0;
  /// Clamp: clamped speculation depth (>= 1).
  uint32_t Depth = 0;
  /// Hoist/Preload: the variable hoisted or preloaded.
  VarId Var = InvalidVar;
  /// Preload: the leaky access node guarded (original CFG).
  NodeId Node = InvalidNode;
  /// estimateWcet delta of applying this mitigation alone, floored at 0.
  uint64_t Cost = 0;

  /// Human-readable one-liner, e.g. "fence at bb3 (cost 2)".
  std::string str(const Program &P) const;
};

/// Configuration of one synthesis run.
struct RepairOptions {
  /// Analysis configuration for the initial run and every re-analysis.
  /// SiteDepthClamp must be empty (clamps are the synthesizer's output);
  /// Budget, IntraJobs and faults are honored per analysis.
  MustHitOptions Analysis;
  /// Cost model (also the timing the concrete revalidation runs under).
  WcetOptions Wcet;
  /// Exact subset search when the candidate count is at most this;
  /// greedy otherwise.
  unsigned ExactSearchLimit = 8;
  /// Test-only repair fault injection for the fuzzer self-test; see
  /// RepairFault. Never set outside tests.
  RepairFault Fault = RepairFault::None;
};

/// Outcome of one synthesis run.
struct RepairResult {
  /// Every reported leak site is proven leak-free by the re-analysis of
  /// the chosen mitigation set. Vacuously true when LeaksBefore == 0.
  bool Repaired = false;
  /// The run's ExecBudget tripped mid-search; everything else is partial.
  bool BudgetExceeded = false;
  /// Set when the program is outside the synthesizer's domain (e.g. a
  /// Summarize-mode module); empty otherwise.
  std::string Error;
  /// The emitted program (equals the input when nothing was applied).
  Program Patched;
  /// The chosen mitigations, cheapest-first, in original coordinates.
  std::vector<Mitigation> Applied;
  /// Per-site depth clamps of the *patched* program's SpecPlan (parallel
  /// to its sites; UINT32_MAX = unclamped). Feed to MustHitOptions::
  /// SiteDepthClamp when re-analyzing, and to SpeculativeCpu window
  /// overrides at each site branch when executing.
  std::vector<uint32_t> SiteClamps;
  uint64_t WcetBefore = 0;
  /// WCET bound of the emitted program under the emitted clamps — the
  /// repair's reported cost is WcetAfter - WcetBefore (>= 0 unless a
  /// hoist removed accesses outright).
  uint64_t WcetAfter = 0;
  uint64_t LeaksBefore = 0;
  /// Leaks the re-analysis of the chosen set still reports (0 when
  /// Repaired).
  uint64_t LeaksAfter = 0;
  /// Leaks of the initial report that only the speculative analysis sees.
  uint64_t SpecOnlyLeaksBefore = 0;
  /// Candidate mitigations generated.
  unsigned Candidates = 0;
  /// Full program re-analyses the search performed (cost annotation and
  /// set evaluation).
  unsigned Reanalyses = 0;
  bool UsedExactSearch = false;

  /// Sum of the applied mitigations' standalone costs.
  uint64_t totalCost() const {
    uint64_t Sum = 0;
    for (const Mitigation &M : Applied)
      Sum += M.Cost;
    return Sum;
  }
};

/// Synthesizes a minimum-cost repair for \p CP (InlineUnroll programs
/// only). Deterministic in (program, options).
RepairResult synthesizeRepairs(const CompiledProgram &CP,
                               const RepairOptions &Options = {});

} // namespace specai

#endif // SPECAI_REPAIR_MITIGATIONSYNTH_H
