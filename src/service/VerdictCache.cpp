//===- VerdictCache.cpp - Sharded LRU cache of analysis verdicts ----------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "service/VerdictCache.h"

#include <cstdio>
#include <fstream>

using namespace specai;

VerdictCache::VerdictCache(uint64_t MaxEntries, unsigned Shards,
                           std::string SpillDir)
    : SpillDir(std::move(SpillDir)) {
  if (Shards == 0)
    Shards = 1;
  if (Shards > MaxEntries && MaxEntries > 0)
    Shards = static_cast<unsigned>(MaxEntries);
  this->Shards.reserve(Shards);
  for (unsigned I = 0; I != Shards; ++I)
    this->Shards.push_back(std::make_unique<Shard>());
  PerShardCapacity = MaxEntries / Shards;
  if (PerShardCapacity == 0)
    PerShardCapacity = 1;
}

bool VerdictCache::lookup(uint64_t Digest, const std::string &Key,
                          ServiceResponse &Out) {
  Shard &S = shardFor(Digest);
  std::lock_guard<std::mutex> Guard(S.Lock);
  auto It = S.Index.find(Digest);
  if (It != S.Index.end()) {
    if (It->second->Key != Key) {
      // Digest collision: treat as a miss. The entry stays; the colliding
      // request just never caches.
      ++S.Misses;
      return false;
    }
    ++S.Hits;
    S.Order.splice(S.Order.begin(), S.Order, It->second);
    Out = It->second->Payload;
    return true;
  }
  if (!SpillDir.empty() && spillRead(S, Digest, Key, Out)) {
    ++S.Hits;
    ++S.SpillHits;
    insertLocked(S, Digest, Key, Out);
    return true;
  }
  ++S.Misses;
  return false;
}

void VerdictCache::insert(uint64_t Digest, const std::string &Key,
                          const ServiceResponse &Payload) {
  Shard &S = shardFor(Digest);
  std::lock_guard<std::mutex> Guard(S.Lock);
  insertLocked(S, Digest, Key, Payload);
}

void VerdictCache::insertLocked(Shard &S, uint64_t Digest,
                                const std::string &Key,
                                const ServiceResponse &Payload) {
  auto It = S.Index.find(Digest);
  if (It != S.Index.end()) {
    if (It->second->Key != Key)
      return; // Collision with a live entry: first writer wins.
    S.Order.splice(S.Order.begin(), S.Order, It->second);
    return;
  }
  while (S.Order.size() >= PerShardCapacity) {
    Entry &Victim = S.Order.back();
    if (!SpillDir.empty())
      spillWrite(S, Victim);
    S.Index.erase(Victim.Digest);
    S.Order.pop_back();
    ++S.Evictions;
  }
  S.Order.push_front(Entry{Digest, Key, Payload});
  S.Index[Digest] = S.Order.begin();
}

VerdictCacheStats VerdictCache::stats() const {
  VerdictCacheStats Out;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Guard(S->Lock);
    Out.Hits += S->Hits;
    Out.Misses += S->Misses;
    Out.Evictions += S->Evictions;
    Out.SpillWrites += S->SpillWrites;
    Out.SpillHits += S->SpillHits;
    Out.Entries += S->Order.size();
  }
  return Out;
}

std::string VerdictCache::spillPath(uint64_t Digest) const {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "/%016llx.verdict",
                static_cast<unsigned long long>(Digest));
  return SpillDir + Name;
}

void VerdictCache::spillWrite(Shard &S, const Entry &E) {
  // Cached verdicts echo the id of whichever request populated them; the
  // engine overwrites the id on every hit, so persisting it is harmless.
  // A write failure (disk full, bad directory) silently downgrades the
  // entry to evicted — the spill tier is best-effort by design.
  std::ofstream F(spillPath(E.Digest), std::ios::trunc);
  if (!F)
    return;
  F << E.Key << '\n' << E.Payload.toJson() << '\n';
  if (F.good())
    ++S.SpillWrites;
}

bool VerdictCache::spillRead(Shard &S, uint64_t Digest, const std::string &Key,
                             ServiceResponse &Out) {
  (void)S;
  std::ifstream F(spillPath(Digest));
  if (!F)
    return false;
  std::string StoredKey, Line;
  if (!std::getline(F, StoredKey) || !std::getline(F, Line))
    return false;
  if (StoredKey != Key)
    return false; // Collision guard holds on disk too.
  std::string Error;
  ServiceResponse R;
  if (!ServiceResponse::fromJson(Line, R, Error))
    return false; // Corrupt spill file: ignore it.
  Out = R;
  return true;
}
