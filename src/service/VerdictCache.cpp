//===- VerdictCache.cpp - Sharded LRU cache of analysis verdicts ----------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "service/VerdictCache.h"

#include "fuzz/StateDigest.h"

#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <unistd.h>

using namespace specai;

namespace {

/// Renders the integrity trailer over the first two lines of a spill file
/// (key + payload, newlines included): "#sum <byte-count> <fnv1a-hex>".
/// Both fields must match on read; the length catches truncation the hash
/// of a short prefix would not, and the hash catches in-place bit rot.
std::string spillTrailer(const std::string &Body) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "#sum %zu %016llx", Body.size(),
                static_cast<unsigned long long>(fnv1a(Body)));
  return Buf;
}

} // namespace

VerdictCache::VerdictCache(uint64_t MaxEntries, unsigned Shards,
                           std::string SpillDir, ServiceFault Fault)
    : SpillDir(std::move(SpillDir)), Fault(Fault) {
  if (Shards == 0)
    Shards = 1;
  if (Shards > MaxEntries && MaxEntries > 0)
    Shards = static_cast<unsigned>(MaxEntries);
  this->Shards.reserve(Shards);
  for (unsigned I = 0; I != Shards; ++I)
    this->Shards.push_back(std::make_unique<Shard>());
  PerShardCapacity = MaxEntries / Shards;
  if (PerShardCapacity == 0)
    PerShardCapacity = 1;

  // Sweep temp files a crashed writer abandoned: they hold unrenamed,
  // possibly half-written payloads nothing will ever read. Finished
  // `.verdict` files survive restarts by design.
  if (!this->SpillDir.empty()) {
    if (DIR *D = opendir(this->SpillDir.c_str())) {
      while (struct dirent *E = readdir(D)) {
        std::string Name = E->d_name;
        if (Name.size() > 4 && Name.compare(Name.size() - 4, 4, ".tmp") == 0)
          ::unlink((this->SpillDir + "/" + Name).c_str());
      }
      closedir(D);
    }
  }
}

bool VerdictCache::lookup(uint64_t Digest, const std::string &Key,
                          ServiceResponse &Out) {
  Shard &S = shardFor(Digest);
  std::lock_guard<std::mutex> Guard(S.Lock);
  auto It = S.Index.find(Digest);
  if (It != S.Index.end()) {
    if (It->second->Key != Key) {
      // Digest collision: treat as a miss. The entry stays; the colliding
      // request just never caches.
      ++S.Misses;
      return false;
    }
    ++S.Hits;
    S.Order.splice(S.Order.begin(), S.Order, It->second);
    Out = It->second->Payload;
    return true;
  }
  if (!SpillDir.empty() && spillRead(S, Digest, Key, Out)) {
    ++S.Hits;
    ++S.SpillHits;
    insertLocked(S, Digest, Key, Out);
    return true;
  }
  ++S.Misses;
  return false;
}

void VerdictCache::insert(uint64_t Digest, const std::string &Key,
                          const ServiceResponse &Payload) {
  Shard &S = shardFor(Digest);
  std::lock_guard<std::mutex> Guard(S.Lock);
  insertLocked(S, Digest, Key, Payload);
}

void VerdictCache::insertLocked(Shard &S, uint64_t Digest,
                                const std::string &Key,
                                const ServiceResponse &Payload) {
  auto It = S.Index.find(Digest);
  if (It != S.Index.end()) {
    if (It->second->Key != Key)
      return; // Collision with a live entry: first writer wins.
    S.Order.splice(S.Order.begin(), S.Order, It->second);
    return;
  }
  while (S.Order.size() >= PerShardCapacity) {
    Entry &Victim = S.Order.back();
    if (!SpillDir.empty())
      spillWrite(S, Victim);
    S.Index.erase(Victim.Digest);
    S.Order.pop_back();
    ++S.Evictions;
  }
  S.Order.push_front(Entry{Digest, Key, Payload});
  S.Index[Digest] = S.Order.begin();
}

VerdictCacheStats VerdictCache::stats() const {
  VerdictCacheStats Out;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Guard(S->Lock);
    Out.Hits += S->Hits;
    Out.Misses += S->Misses;
    Out.Evictions += S->Evictions;
    Out.SpillWrites += S->SpillWrites;
    Out.SpillHits += S->SpillHits;
    Out.SpillCorrupt += S->SpillCorrupt;
    Out.Entries += S->Order.size();
  }
  return Out;
}

std::string VerdictCache::spillPath(uint64_t Digest) const {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "/%016llx.verdict",
                static_cast<unsigned long long>(Digest));
  return SpillDir + Name;
}

void VerdictCache::spillWrite(Shard &S, const Entry &E) {
  // Cached verdicts echo the id of whichever request populated them; the
  // engine overwrites the id on every hit, so persisting it is harmless.
  // A write failure (disk full, bad directory) silently downgrades the
  // entry to evicted — the spill tier is best-effort by design.
  //
  // Crash tolerance: the body lands in a temp file first and moves into
  // place with rename(), which POSIX makes atomic — a reader (or a
  // restarted daemon) sees either the complete old file or the complete
  // new one, never a torn write. Orphaned temps are swept at startup.
  std::string Body = E.Key;
  Body += '\n';
  Body += E.Payload.toJson();
  Body += '\n';

  // Injected faults model the failure modes the trailer exists to catch:
  // a torn write (half the body) and bit rot (same length, garbage). Both
  // keep the *stale* trailer so reads must reject them.
  std::string Trailer = spillTrailer(Body);
  if (Fault == ServiceFault::SpillTruncate)
    Body.resize(Body.size() / 2);
  else if (Fault == ServiceFault::SpillGarbage)
    for (char &C : Body)
      C = '~';

  std::string Final = spillPath(E.Digest);
  std::string Tmp = Final + ".tmp";
  {
    std::ofstream F(Tmp, std::ios::trunc);
    if (!F)
      return;
    F << Body << Trailer << '\n';
    if (!F.good())
      return;
  }
  if (std::rename(Tmp.c_str(), Final.c_str()) == 0)
    ++S.SpillWrites;
  else
    ::unlink(Tmp.c_str());
}

bool VerdictCache::spillRead(Shard &S, uint64_t Digest, const std::string &Key,
                             ServiceResponse &Out) {
  std::string Path = spillPath(Digest);
  std::ifstream F(Path);
  if (!F)
    return false;

  // Reject-and-quarantine: any integrity failure renames the file to
  // `.corrupt` (keeping the evidence for postmortems, and keeping the
  // lookup path from re-parsing the same broken bytes forever) and counts
  // SpillCorrupt. The caller then counts an ordinary miss and recomputes
  // — a corrupt spill entry can never surface as a verdict.
  auto Reject = [&] {
    F.close();
    std::rename(Path.c_str(), (Path + ".corrupt").c_str());
    ++S.SpillCorrupt;
    return false;
  };

  std::string StoredKey, Line, Trailer;
  if (!std::getline(F, StoredKey) || !std::getline(F, Line) ||
      !std::getline(F, Trailer))
    return Reject(); // Truncated: a pre-hardening torn write.
  std::string Body = StoredKey;
  Body += '\n';
  Body += Line;
  Body += '\n';
  if (Trailer != spillTrailer(Body))
    return Reject(); // Length or checksum mismatch: garbage bytes.
  if (StoredKey != Key)
    return Reject(); // Wrong key at this digest's path: stale/foreign file.
  std::string Error;
  ServiceResponse R;
  if (!ServiceResponse::fromJson(Line, R, Error))
    return Reject(); // Checksummed but unparseable: writer bug, still safe.
  Out = R;
  return true;
}
