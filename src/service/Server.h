//===- Server.h - Local-socket front end of the specaid daemon --*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's transport (docs/SERVICE.md): a Unix-domain stream socket
/// speaking the newline-delimited JSON protocol. Each accepted connection
/// gets its own thread reading request lines, dispatching to the
/// ServiceEngine (analyze, ping) or handling control ops locally (stats,
/// shutdown), and writing one response line per request. A connection may
/// pipeline any number of requests; responses come back in request order
/// on that connection.
///
/// Socket specifics live behind a pimpl so this header stays free of
/// POSIX includes (the public umbrella header pulls it in).
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_SERVICE_SERVER_H
#define SPECAI_SERVICE_SERVER_H

#include "service/ServiceEngine.h"

#include <memory>
#include <string>

namespace specai {

/// Transport knobs of the daemon's socket front end.
struct ServerOptions {
  /// Bound on a single buffered request line. A peer streaming an endless
  /// line (malicious or just broken) gets a `status: error` response and
  /// its connection closed once the buffer passes this, instead of growing
  /// the daemon's heap without bound.
  size_t MaxRequestBytes = 1 << 20;
  /// Test-only fault injection (docs/SERVICE.md fault matrix): only the
  /// transport rungs (OversizedRequest, SlowClient) act here.
  ServiceFault Fault = ServiceFault::None;
};

/// Unix-domain-socket server wrapping a ServiceEngine.
class ServiceServer {
public:
  /// \p Engine must outlive the server.
  explicit ServiceServer(ServiceEngine &Engine,
                         const ServerOptions &Opts = {});
  ~ServiceServer();

  ServiceServer(const ServiceServer &) = delete;
  ServiceServer &operator=(const ServiceServer &) = delete;

  /// Binds and listens on \p SocketPath (unlinking any stale socket file
  /// first) and starts the accept thread. Returns false and fills
  /// \p Error on any socket failure.
  bool start(const std::string &SocketPath, std::string &Error);

  /// Runs until a `shutdown` request arrives or stop() is called, then
  /// drains the open connections and returns.
  void wait();

  /// Initiates shutdown from another thread (or a signal-adjacent path).
  /// Safe to call more than once.
  void stop();

  /// Connections accepted since start().
  uint64_t connectionCount() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace specai

#endif // SPECAI_SERVICE_SERVER_H
