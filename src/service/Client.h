//===- Client.h - Thin client for the specaid daemon ------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Blocking client side of the specaid protocol (docs/SERVICE.md): connect
/// to the daemon's Unix socket, send one request line, read one response
/// line. One connection may carry any number of sequential calls. Socket
/// details live behind a pimpl, like the server's.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_SERVICE_CLIENT_H
#define SPECAI_SERVICE_CLIENT_H

#include "service/Protocol.h"

#include <memory>
#include <string>

namespace specai {

/// Blocking connection to a running specaid daemon.
class ServiceClient {
public:
  ServiceClient();
  ~ServiceClient();

  ServiceClient(const ServiceClient &) = delete;
  ServiceClient &operator=(const ServiceClient &) = delete;

  /// Connects to the daemon at \p SocketPath. False + \p Error on
  /// failure.
  bool connect(const std::string &SocketPath, std::string &Error);

  /// Sends \p Req and blocks for the response. False + \p Error on
  /// transport or parse failure (a response with status `error` is still
  /// a *successful* call — inspect \p Resp.Status).
  bool call(const ServiceRequest &Req, ServiceResponse &Resp,
            std::string &Error);

  /// The raw response line of the last successful call — for ops like
  /// `stats` whose responses carry fields beyond the ServiceResponse
  /// schema.
  const std::string &lastLine() const;

  bool connected() const;
  void close();

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace specai

#endif // SPECAI_SERVICE_CLIENT_H
