//===- AnalysisPool.h - Bounded priority worker pool ------------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The specaid daemon's analysis scheduler (docs/SERVICE.md). Unlike
/// `parallelFor` — which fans a *known* index range out and joins — this
/// pool is long-lived: connection threads enqueue analysis jobs as
/// requests arrive, persistent workers drain them, and the queue is
/// explicitly bounded. `tryEnqueue` never blocks and never grows the
/// queue past its capacity; a full queue is reported to the caller, who
/// turns it into an `overloaded` response. That makes overload a protocol
/// event the client can see and retry, instead of unbounded memory growth
/// and silent latency inside the daemon.
///
/// Jobs carry a priority: higher runs first, FIFO within a priority (a
/// monotonic sequence number breaks ties, so equal-priority jobs cannot
/// starve each other). Worker threads wrap each job in a catch-all so a
/// throwing job can never std::terminate the daemon.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_SERVICE_ANALYSISPOOL_H
#define SPECAI_SERVICE_ANALYSISPOOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace specai {

/// Fixed-size pool of persistent workers draining a bounded priority
/// queue.
class AnalysisPool {
public:
  /// \p Jobs workers (0 = hardware concurrency); \p QueueCapacity bounds
  /// the number of *queued* (not yet running) jobs.
  explicit AnalysisPool(unsigned Jobs, size_t QueueCapacity);
  ~AnalysisPool();

  AnalysisPool(const AnalysisPool &) = delete;
  AnalysisPool &operator=(const AnalysisPool &) = delete;

  /// Enqueues \p Job at \p Priority (higher runs first). Returns false —
  /// without blocking or queuing — when the queue is at capacity or the
  /// pool is shutting down.
  bool tryEnqueue(int64_t Priority, std::function<void()> Job);

  /// Stops accepting work, drains the queue, and joins the workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  unsigned jobCount() const { return static_cast<unsigned>(Workers.size()); }

  /// Jobs rejected by tryEnqueue since construction.
  uint64_t rejectedCount() const;
  /// Jobs whose callable threw (the exception was swallowed by the
  /// worker's catch-all; the job itself is responsible for reporting).
  uint64_t faultedCount() const;

private:
  struct Item {
    int64_t Priority = 0;
    uint64_t Seq = 0;
    std::function<void()> Job;
  };
  struct ItemOrder {
    bool operator()(const Item &A, const Item &B) const {
      if (A.Priority != B.Priority)
        return A.Priority < B.Priority; // Larger priority on top.
      return A.Seq > B.Seq;             // Then earlier arrival on top.
    }
  };

  void workerLoop();

  mutable std::mutex Lock;
  std::condition_variable WorkReady;
  std::priority_queue<Item, std::vector<Item>, ItemOrder> Queue;
  size_t QueueCapacity;
  uint64_t NextSeq = 0;
  uint64_t Rejected = 0;
  uint64_t Faulted = 0;
  bool Stopping = false;
  std::vector<std::thread> Workers;
};

} // namespace specai

#endif // SPECAI_SERVICE_ANALYSISPOOL_H
