//===- ServiceEngine.cpp - Request handling behind the daemon -------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "service/ServiceEngine.h"

#include "fuzz/StateDigest.h"
#include "service/Json.h"

#include <memory>

using namespace specai;

ServiceEngine::ServiceEngine(const ServiceEngineOptions &Opts)
    : Cache(Opts.CacheEntries, Opts.CacheShards, Opts.SpillDir),
      Pool(Opts.Jobs, Opts.QueueCapacity) {}

ServiceEngine::~ServiceEngine() {
  // Quiesce the workers before any member they touch is destroyed.
  Pool.shutdown();
}

ServiceResponse ServiceEngine::handle(const ServiceRequest &Req) {
  if (Req.Op == ServiceOp::Ping) {
    std::lock_guard<std::mutex> Guard(Lock);
    ++Requests;
    ServiceResponse R;
    R.Status = ServiceStatus::Ok;
    R.Id = Req.Id;
    return R;
  }
  if (Req.Op != ServiceOp::Analyze) {
    ServiceResponse R;
    R.Status = ServiceStatus::Error;
    R.Id = Req.Id;
    R.Error = std::string("engine: op '") + serviceOpName(Req.Op) +
              "' is handled by the server";
    return R;
  }
  return handleAnalyze(Req);
}

ServiceResponse ServiceEngine::handleAnalyze(const ServiceRequest &Req) {
  std::string SrcKeyStr = Req.loweringKey();
  SrcKeyStr += '\0';
  SrcKeyStr += Req.Source;
  const uint64_t SrcKey = fnv1a(SrcKeyStr);

  // Tier 1: the source memo. The stored full key must match too — a bare
  // SrcKey collision between distinct sources degrades to a miss, never to
  // another program's digest.
  uint64_t ProgramDigest = 0;
  bool HaveDigest = false;
  {
    std::lock_guard<std::mutex> Guard(Lock);
    ++Requests;
    auto It = SourceMemo.find(SrcKey);
    if (It != SourceMemo.end() && It->second.Key == SrcKeyStr) {
      if (!It->second.Ok) {
        // Memoized compile error: answer without recompiling.
        ++CacheHits;
        ServiceResponse R;
        R.Status = ServiceStatus::Error;
        R.Id = Req.Id;
        R.Cached = true;
        R.Error = It->second.Error;
        return R;
      }
      ProgramDigest = It->second.ProgramDigest;
      HaveDigest = true;
    }
  }

  // Tier 2: the verdict cache (only reachable once the source compiled at
  // least once — the digest is over the lowered IR, not the text).
  if (HaveDigest) {
    const uint64_t Digest = requestDigest(ProgramDigest, Req);
    ServiceResponse R;
    if (Cache.lookup(Digest, requestKeyString(ProgramDigest, Req), R)) {
      {
        std::lock_guard<std::mutex> Guard(Lock);
        ++CacheHits;
      }
      R.Id = Req.Id;
      R.Cached = true;
      R.RequestDigest = Digest;
      R.Seconds = 0; // No analysis ran for this request.
      return R;
    }
  }

  // Tier 3: schedule the analysis, coalescing exact duplicates that are
  // already in flight. The key is the full request identity (options +
  // source), not a digest — collisions must not fuse distinct requests.
  std::string FlightKey = Req.optionKey();
  FlightKey += '\0';
  FlightKey += Req.Source;

  std::shared_future<ServiceResponse> Fut;
  std::shared_ptr<std::promise<ServiceResponse>> Prom;
  {
    std::lock_guard<std::mutex> Guard(Lock);
    auto It = InFlight.find(FlightKey);
    if (It != InFlight.end()) {
      Fut = It->second;
      ++Coalesced;
    } else {
      Prom = std::make_shared<std::promise<ServiceResponse>>();
      Fut = Prom->get_future().share();
      InFlight.emplace(FlightKey, Fut);
    }
  }

  if (Prom) {
    bool Queued = Pool.tryEnqueue(Req.Priority, [this, Req, SrcKey, FlightKey,
                                                 Prom] {
      // An analysis that throws (requireRow, a rethrown parallelFor worker
      // fault, bad_alloc, ...) must still resolve the promise: the waiter
      // below — and every duplicate coalesced onto this flight — blocks in
      // Fut.get() while holding the promise alive, so a swallowed exception
      // would park them all forever.
      ServiceResponse Out;
      try {
        Out = runAnalysis(Req, SrcKey);
      } catch (const std::exception &E) {
        Out = ServiceResponse();
        Out.Status = ServiceStatus::Error;
        Out.Error = std::string("analysis failed: ") + E.what();
      } catch (...) {
        Out = ServiceResponse();
        Out.Status = ServiceStatus::Error;
        Out.Error = "analysis failed: unknown exception";
      }
      {
        std::lock_guard<std::mutex> Guard(Lock);
        InFlight.erase(FlightKey);
      }
      Prom->set_value(std::move(Out));
    });
    if (!Queued) {
      // Backpressure: reject now, and resolve the in-flight entry so any
      // request that coalesced onto it in the window above is also told
      // to retry rather than parked forever.
      ServiceResponse R;
      R.Status = ServiceStatus::Overloaded;
      R.Error = "analysis queue is full; retry later";
      {
        std::lock_guard<std::mutex> Guard(Lock);
        ++OverloadedCount;
        InFlight.erase(FlightKey);
      }
      Prom->set_value(R);
      R.Id = Req.Id;
      return R;
    }
  }

  ServiceResponse R = Fut.get();
  R.Id = Req.Id;
  if (!Prom && R.Status == ServiceStatus::Ok) {
    // A coalesced duplicate: the verdict exists because some *other*
    // request paid for it.
    R.Cached = true;
    R.Seconds = 0;
  }
  return R;
}

ServiceResponse ServiceEngine::runAnalysis(const ServiceRequest &Req,
                                           uint64_t SrcKey) {
  RunOutcome Out = runRequest(Req.toRunRequest());
  std::string SrcKeyStr = Req.loweringKey();
  SrcKeyStr += '\0';
  SrcKeyStr += Req.Source;
  {
    std::lock_guard<std::mutex> Guard(Lock);
    ++AnalysesRun;
    CompileMemo &M = SourceMemo[SrcKey];
    M.Ok = Out.Ok;
    M.ProgramDigest = Out.ProgramDigest;
    M.Error = Out.Error;
    M.Key = std::move(SrcKeyStr);
    if (!Out.Ok)
      ++CompileErrors;
  }
  if (!Out.Ok) {
    ServiceResponse R;
    R.Status = ServiceStatus::Error;
    R.Error = Out.Error;
    return R;
  }
  ServiceResponse R = ServiceResponse::fromRow(Out.Row);
  R.RequestDigest = requestDigest(Out.ProgramDigest, Req);
  Cache.insert(R.RequestDigest, requestKeyString(Out.ProgramDigest, Req), R);
  return R;
}

ServiceEngineStats ServiceEngine::stats() const {
  ServiceEngineStats S;
  {
    std::lock_guard<std::mutex> Guard(Lock);
    S.Requests = Requests;
    S.CacheHits = CacheHits;
    S.AnalysesRun = AnalysesRun;
    S.CompileErrors = CompileErrors;
    S.Overloaded = OverloadedCount;
    S.Coalesced = Coalesced;
  }
  S.Cache = Cache.stats();
  return S;
}

std::string ServiceEngine::statsJson(uint64_t Id) const {
  ServiceEngineStats S = stats();
  JsonWriter W;
  W.field("status", serviceStatusName(ServiceStatus::Ok));
  W.field("id", Id);
  W.field("requests", S.Requests);
  W.field("cache_hits", S.CacheHits);
  W.field("analyses_run", S.AnalysesRun);
  W.field("compile_errors", S.CompileErrors);
  W.field("overloaded", S.Overloaded);
  W.field("coalesced", S.Coalesced);
  W.field("cache_entries", S.Cache.Entries);
  W.field("cache_evictions", S.Cache.Evictions);
  W.field("cache_spill_writes", S.Cache.SpillWrites);
  W.field("cache_spill_hits", S.Cache.SpillHits);
  W.field("pool_rejected", Pool.rejectedCount());
  W.field("pool_faulted", Pool.faultedCount());
  W.field("jobs", static_cast<uint64_t>(Pool.jobCount()));
  return W.finish();
}
