//===- ServiceEngine.cpp - Request handling behind the daemon -------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "service/ServiceEngine.h"

#include "fuzz/StateDigest.h"
#include "service/Json.h"

#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>

using namespace specai;

ServiceEngine::ServiceEngine(const ServiceEngineOptions &Opts)
    : Cache(Opts.CacheEntries, Opts.CacheShards, Opts.SpillDir, Opts.Fault),
      Pool(Opts.Jobs, Opts.QueueCapacity),
      MemoCapacity(Opts.MemoEntries ? Opts.MemoEntries : 1),
      Fault(Opts.Fault) {}

ServiceEngine::~ServiceEngine() {
  // Cancel in-flight and queued analyses (their budgets poll the flag),
  // then quiesce the workers before any member they touch is destroyed.
  beginShutdown();
  Pool.shutdown();
}

void ServiceEngine::beginShutdown() {
  ShuttingDown.store(true, std::memory_order_relaxed);
}

ServiceResponse ServiceEngine::handle(const ServiceRequest &Req) {
  if (Req.Op == ServiceOp::Ping) {
    std::lock_guard<std::mutex> Guard(Lock);
    ++Requests;
    ServiceResponse R;
    R.Status = ServiceStatus::Ok;
    R.Id = Req.Id;
    return R;
  }
  if (Req.Op != ServiceOp::Analyze && Req.Op != ServiceOp::Repair) {
    ServiceResponse R;
    R.Status = ServiceStatus::Error;
    R.Id = Req.Id;
    R.Error = std::string("engine: op '") + serviceOpName(Req.Op) +
              "' is handled by the server";
    return R;
  }
  // Repair rides the same three tiers as Analyze: its option key carries
  // an `op=repair` suffix, so the two verbs never share a cache entry.
  return handleAnalyze(Req);
}

ServiceResponse ServiceEngine::handleAnalyze(const ServiceRequest &Req) {
  // The deadline anchors at acceptance: queueing, stalls, and analysis all
  // spend the same allowance, so "answers within 2x its deadline" holds
  // whatever the pool is doing.
  const auto Deadline = ExecBudget::Clock::now() +
                        std::chrono::milliseconds(Req.TimeoutMs);

  std::string SrcKeyStr = Req.loweringKey();
  SrcKeyStr += '\0';
  SrcKeyStr += Req.Source;
  const uint64_t SrcKey = fnv1a(SrcKeyStr);

  // Tier 1: the source memo. The stored full key must match too — a bare
  // SrcKey collision between distinct sources degrades to a miss, never to
  // another program's digest.
  uint64_t ProgramDigest = 0;
  bool HaveDigest = false;
  {
    std::lock_guard<std::mutex> Guard(Lock);
    ++Requests;
    if (CompileMemo *M = memoLookup(SrcKey, SrcKeyStr)) {
      if (!M->Ok) {
        // Memoized compile error: answer without recompiling.
        ++CacheHits;
        ServiceResponse R;
        R.Status = ServiceStatus::Error;
        R.Id = Req.Id;
        R.Cached = true;
        R.Error = M->Error;
        return R;
      }
      ProgramDigest = M->ProgramDigest;
      HaveDigest = true;
    }
  }

  // Tier 2: the verdict cache (only reachable once the source compiled at
  // least once — the digest is over the lowered IR, not the text).
  if (HaveDigest) {
    const uint64_t Digest = requestDigest(ProgramDigest, Req);
    ServiceResponse R;
    if (Cache.lookup(Digest, requestKeyString(ProgramDigest, Req), R)) {
      {
        std::lock_guard<std::mutex> Guard(Lock);
        ++CacheHits;
      }
      R.Id = Req.Id;
      R.Cached = true;
      R.RequestDigest = Digest;
      R.Seconds = 0; // No analysis ran for this request.
      return R;
    }
  }

  // Tier 3: schedule the analysis, coalescing exact duplicates that are
  // already in flight. The key is the full request identity (options +
  // source), not a digest — collisions must not fuse distinct requests.
  std::string FlightKey = Req.optionKey();
  FlightKey += '\0';
  FlightKey += Req.Source;

  std::shared_future<ServiceResponse> Fut;
  std::shared_ptr<std::promise<ServiceResponse>> Prom;
  {
    std::lock_guard<std::mutex> Guard(Lock);
    auto It = InFlight.find(FlightKey);
    if (It != InFlight.end()) {
      Fut = It->second;
      ++Coalesced;
    } else {
      Prom = std::make_shared<std::promise<ServiceResponse>>();
      Fut = Prom->get_future().share();
      InFlight.emplace(FlightKey, Fut);
    }
  }

  if (Prom) {
    // The flight's budget: this request's deadline and step cap, plus the
    // engine-wide shutdown flag. Unbudgeted requests still carry one so
    // shutdown can cancel them while queued or mid-fixpoint. Owned by the
    // job (shared_ptr) — the enqueuing thread may return before it runs.
    auto Budget = std::make_shared<ExecBudget>(Req.TimeoutMs, Req.MaxSteps,
                                               &ShuttingDown);
    bool Queued = Pool.tryEnqueue(Req.Priority, [this, Req, SrcKey, FlightKey,
                                                 Prom, Budget] {
      // An analysis that throws (requireRow, a rethrown parallelFor worker
      // fault, bad_alloc, ...) must still resolve the promise: the waiter
      // below — and every duplicate coalesced onto this flight — blocks in
      // Fut.get() while holding the promise alive, so a swallowed exception
      // would park them all forever.
      ServiceResponse Out;
      try {
        Out = runAnalysis(Req, SrcKey, *Budget);
      } catch (const std::exception &E) {
        Out = ServiceResponse();
        Out.Status = ServiceStatus::Error;
        Out.Error = std::string("analysis failed: ") + E.what();
      } catch (...) {
        Out = ServiceResponse();
        Out.Status = ServiceStatus::Error;
        Out.Error = "analysis failed: unknown exception";
      }
      {
        std::lock_guard<std::mutex> Guard(Lock);
        InFlight.erase(FlightKey);
      }
      Prom->set_value(std::move(Out));
    });
    if (!Queued) {
      // Backpressure: reject now, and resolve the in-flight entry so any
      // request that coalesced onto it in the window above is also told
      // to retry rather than parked forever.
      ServiceResponse R;
      R.Status = ServiceStatus::Overloaded;
      R.Error = "analysis queue is full; retry later";
      {
        std::lock_guard<std::mutex> Guard(Lock);
        ++OverloadedCount;
        InFlight.erase(FlightKey);
      }
      Prom->set_value(R);
      R.Id = Req.Id;
      return R;
    }
  }

  // Budgeted waiters detach at their own deadline: a coalesced duplicate
  // with a short deadline must not inherit a longer flight's latency, and
  // a worker stalled past every deadline must not strand anyone. The
  // flight itself keeps running and resolves for patient waiters; its
  // verdict (if Ok) is cached for the detached client's retry.
  if (Req.TimeoutMs != 0 &&
      Fut.wait_until(Deadline) == std::future_status::timeout) {
    ServiceResponse R;
    R.Status = ServiceStatus::Timeout;
    R.Id = Req.Id;
    R.Error = "deadline exceeded before the analysis finished";
    std::lock_guard<std::mutex> Guard(Lock);
    ++Timeouts;
    return R;
  }

  ServiceResponse R = Fut.get();
  R.Id = Req.Id;
  if (R.Status == ServiceStatus::Timeout) {
    std::lock_guard<std::mutex> Guard(Lock);
    ++Timeouts;
  }
  if (!Prom && R.Status == ServiceStatus::Ok) {
    // A coalesced duplicate: the verdict exists because some *other*
    // request paid for it.
    R.Cached = true;
    R.Seconds = 0;
  }
  return R;
}

ServiceResponse ServiceEngine::runAnalysis(const ServiceRequest &Req,
                                           uint64_t SrcKey,
                                           ExecBudget &Budget) {
  // Injected fault: every analysis throws after scheduling. Containment
  // is the enqueue lambda's catch — waiters and coalesced duplicates all
  // get an error response, the pool worker survives.
  if (Fault == ServiceFault::AnalysisThrow)
    throw std::runtime_error("injected fault: analysis-throw");

  // Injected fault: the worker stalls before touching the fixpoint, well
  // past any realistic deadline — the containment claim is that budgeted
  // waiters still answer `timeout` on time and the daemon stays healthy.
  if (Fault == ServiceFault::WorkerStall) {
    for (int I = 0; I != 20 && !Budget.exhausted(); ++I)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // A budget spent while queued (or a daemon mid-shutdown) short-circuits:
  // running the analysis would only delay the timeout answer.
  auto TimeoutResponse = [&] {
    ServiceResponse R;
    R.Status = ServiceStatus::Timeout;
    R.Error = std::string("analysis budget exhausted (") +
              budgetTripName(Budget.trip()) + ")";
    return R;
  };
  if (Budget.exhausted())
    return TimeoutResponse();

  RunRequest RR = Req.toRunRequest();
  RR.Options.Budget = &Budget;

  if (Req.Op == ServiceOp::Repair) {
    RepairRunOutcome Out = runRepairRequest(RR);
    std::string SrcKeyStr = Req.loweringKey();
    SrcKeyStr += '\0';
    SrcKeyStr += Req.Source;
    {
      std::lock_guard<std::mutex> Guard(Lock);
      ++AnalysesRun;
      CompileMemo M;
      M.Ok = Out.Ok;
      M.ProgramDigest = Out.ProgramDigest;
      M.Error = Out.Error;
      M.Key = std::move(SrcKeyStr);
      if (!Out.Ok)
        ++CompileErrors;
      memoStore(SrcKey, std::move(M));
    }
    if (!Out.Ok) {
      ServiceResponse R;
      R.Status = ServiceStatus::Error;
      R.Error = Out.Error;
      return R;
    }
    if (Out.Result.BudgetExceeded)
      return TimeoutResponse(); // Partial search: never cached.
    ServiceResponse R;
    if (!Out.Result.Error.empty()) {
      // Outside the synthesizer's domain (e.g. a Summarize-mode module):
      // a definitive answer, but an error, not a verdict — never cached.
      R.Status = ServiceStatus::Error;
      R.Error = Out.Result.Error;
      return R;
    }
    R.Status = ServiceStatus::Ok;
    R.RepairChecked = true;
    R.Repaired = Out.Result.Repaired;
    R.LeaksBefore = Out.Result.LeaksBefore;
    R.LeaksAfter = Out.Result.LeaksAfter;
    R.WcetBefore = Out.Result.WcetBefore;
    R.WcetAfter = Out.Result.WcetAfter;
    for (const Mitigation &M : Out.Result.Applied)
      R.Mitigations.push_back(M.str(Out.Result.Patched));
    R.PatchedIr = Out.Result.Patched.str();
    R.VerdictDigest = repairVerdictDigest(R);
    R.RequestDigest = requestDigest(Out.ProgramDigest, Req);
    Cache.insert(R.RequestDigest, requestKeyString(Out.ProgramDigest, Req), R);
    return R;
  }

  RunOutcome Out = runRequest(RR);
  std::string SrcKeyStr = Req.loweringKey();
  SrcKeyStr += '\0';
  SrcKeyStr += Req.Source;
  {
    std::lock_guard<std::mutex> Guard(Lock);
    ++AnalysesRun;
    CompileMemo M;
    M.Ok = Out.Ok;
    M.ProgramDigest = Out.ProgramDigest;
    M.Error = Out.Error;
    M.Key = std::move(SrcKeyStr);
    if (!Out.Ok)
      ++CompileErrors;
    // The compile outcome is budget-independent, so memoizing it is safe
    // even when the fixpoint below timed out.
    memoStore(SrcKey, std::move(M));
  }
  if (!Out.Ok) {
    ServiceResponse R;
    R.Status = ServiceStatus::Error;
    R.Error = Out.Error;
    return R;
  }
  if (Out.Row.BudgetExceeded)
    return TimeoutResponse(); // Partial fixpoint: never cached.
  ServiceResponse R = ServiceResponse::fromRow(Out.Row);
  R.RequestDigest = requestDigest(Out.ProgramDigest, Req);
  Cache.insert(R.RequestDigest, requestKeyString(Out.ProgramDigest, Req), R);
  return R;
}

ServiceEngine::CompileMemo *
ServiceEngine::memoLookup(uint64_t SrcKey, const std::string &SrcKeyStr) {
  auto It = MemoIndex.find(SrcKey);
  if (It == MemoIndex.end() || It->second->second.Key != SrcKeyStr)
    return nullptr;
  MemoOrder.splice(MemoOrder.begin(), MemoOrder, It->second);
  return &It->second->second;
}

void ServiceEngine::memoStore(uint64_t SrcKey, CompileMemo M) {
  auto It = MemoIndex.find(SrcKey);
  if (It != MemoIndex.end()) {
    // Same digest slot (collision or refresh): last writer wins, recency
    // refreshed. A collision victim recompiles on every request — slower,
    // never wrong, matching VerdictCache's guard discipline.
    It->second->second = std::move(M);
    MemoOrder.splice(MemoOrder.begin(), MemoOrder, It->second);
    return;
  }
  MemoOrder.emplace_front(SrcKey, std::move(M));
  MemoIndex[SrcKey] = MemoOrder.begin();
  while (MemoOrder.size() > MemoCapacity) {
    MemoIndex.erase(MemoOrder.back().first);
    MemoOrder.pop_back();
    ++MemoEvictions;
  }
}

ServiceEngineStats ServiceEngine::stats() const {
  ServiceEngineStats S;
  {
    std::lock_guard<std::mutex> Guard(Lock);
    S.Requests = Requests;
    S.CacheHits = CacheHits;
    S.AnalysesRun = AnalysesRun;
    S.CompileErrors = CompileErrors;
    S.Overloaded = OverloadedCount;
    S.Coalesced = Coalesced;
    S.Timeouts = Timeouts;
    S.MemoEntries = MemoOrder.size();
    S.MemoEvictions = MemoEvictions;
  }
  S.Cache = Cache.stats();
  return S;
}

std::string ServiceEngine::statsJson(uint64_t Id) const {
  ServiceEngineStats S = stats();
  JsonWriter W;
  W.field("status", serviceStatusName(ServiceStatus::Ok));
  W.field("id", Id);
  W.field("requests", S.Requests);
  W.field("cache_hits", S.CacheHits);
  W.field("analyses_run", S.AnalysesRun);
  W.field("compile_errors", S.CompileErrors);
  W.field("overloaded", S.Overloaded);
  W.field("coalesced", S.Coalesced);
  W.field("timeouts", S.Timeouts);
  W.field("memo_entries", S.MemoEntries);
  W.field("memo_evictions", S.MemoEvictions);
  W.field("cache_entries", S.Cache.Entries);
  W.field("cache_evictions", S.Cache.Evictions);
  W.field("cache_spill_writes", S.Cache.SpillWrites);
  W.field("cache_spill_hits", S.Cache.SpillHits);
  W.field("cache_spill_corrupt", S.Cache.SpillCorrupt);
  W.field("pool_rejected", Pool.rejectedCount());
  W.field("pool_faulted", Pool.faultedCount());
  W.field("jobs", static_cast<uint64_t>(Pool.jobCount()));
  return W.finish();
}
