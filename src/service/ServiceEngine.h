//===- ServiceEngine.h - Request handling behind the daemon -----*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport-independent core of the specaid daemon (docs/SERVICE.md):
/// everything between a parsed ServiceRequest and a ServiceResponse, with
/// no sockets involved — the server hands requests in, tests and the
/// replay bench drive it directly.
///
/// An analyze request flows through three tiers:
///
///   1. Source memo: `fnv1a(loweringKey \0 source)` -> the compiled
///      program's digest (or its memoized compile error). A repeat of a
///      known source skips compilation entirely; compile *errors* are
///      memoized too, so a client retrying a broken program in a loop
///      costs one compile, not N.
///   2. Verdict cache: the content-addressed request digest (program
///      digest x option key) looked up in the sharded LRU VerdictCache.
///   3. Analysis pool: misses are scheduled on the bounded AnalysisPool at
///      the request's priority. A full queue yields an `overloaded`
///      response without blocking. Identical in-flight requests coalesce
///      onto one analysis via a shared future, so a thundering herd of
///      duplicates costs one fixpoint.
///
/// handle() blocks its calling (connection) thread until the verdict is
/// ready; concurrency comes from the daemon's per-connection threads, not
/// from this API.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_SERVICE_SERVICEENGINE_H
#define SPECAI_SERVICE_SERVICEENGINE_H

#include "service/AnalysisPool.h"
#include "service/Protocol.h"
#include "service/VerdictCache.h"
#include "support/ExecBudget.h"

#include <atomic>
#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>

namespace specai {

struct ServiceEngineOptions {
  /// Analysis worker threads (0 = hardware concurrency).
  unsigned Jobs = 0;
  /// Total verdict-cache entries across all shards.
  uint64_t CacheEntries = 4096;
  unsigned CacheShards = 8;
  /// Optional existing directory for the cache's disk spill tier.
  std::string SpillDir;
  /// Bound on queued (not yet running) analyses before `overloaded`.
  size_t QueueCapacity = 64;
  /// Bound on source-memo entries before LRU eviction; a daemon seeing
  /// pathological source churn stays bounded instead of growing forever.
  uint64_t MemoEntries = 4096;
  /// Test-only fault injection (docs/SERVICE.md fault matrix): the spill
  /// rungs arm the VerdictCache, WorkerStall/AnalysisThrow arm the
  /// analysis path; the transport rungs are the Server's business.
  ServiceFault Fault = ServiceFault::None;
};

/// Aggregated engine counters for the stats endpoint.
struct ServiceEngineStats {
  uint64_t Requests = 0;
  uint64_t CacheHits = 0;
  uint64_t AnalysesRun = 0;
  uint64_t CompileErrors = 0;
  uint64_t Overloaded = 0;
  /// Requests that coalesced onto an identical in-flight analysis.
  uint64_t Coalesced = 0;
  /// `status: timeout` responses delivered (spent deadlines, step caps,
  /// shutdown cancellations).
  uint64_t Timeouts = 0;
  /// Live source-memo entries and LRU evictions from it.
  uint64_t MemoEntries = 0;
  uint64_t MemoEvictions = 0;
  VerdictCacheStats Cache;
};

/// Transport-independent specaid request handler. Thread-safe: any number
/// of connection threads may call handle() concurrently.
class ServiceEngine {
public:
  explicit ServiceEngine(const ServiceEngineOptions &Opts);
  virtual ~ServiceEngine();

  /// Handles one Analyze or Ping request, blocking until the response is
  /// ready (instant for cache hits, pings, and overload rejections). A
  /// request carrying `timeout_ms` blocks at most that long: the waiter
  /// detaches with `status: timeout` even if the analysis is still
  /// stalling, so every budgeted request answers within ~its deadline.
  /// Control ops other than Ping get an error response — routing them is
  /// the server's job.
  ServiceResponse handle(const ServiceRequest &Req);

  /// Flips the engine-wide cancel flag every request budget polls: queued
  /// analyses short-circuit to `timeout` instead of running, and in-flight
  /// fixpoints abandon work at their next budget check. Called by the
  /// server's Shutdown op (and the destructor) so shutdown cancels
  /// promptly instead of draining the queue at full cost.
  void beginShutdown();

  ServiceEngineStats stats() const;

  /// Renders stats() as one response line (status ok, id echoed) for the
  /// `stats` op. Extra keys beyond the ServiceResponse schema are
  /// intentional; ServiceResponse::fromJson ignores them.
  std::string statsJson(uint64_t Id) const;

  unsigned jobCount() const { return Pool.jobCount(); }

protected:
  /// Runs the analysis synchronously (called on a pool worker), fills the
  /// memo, publishes to the verdict cache, and returns the response. A
  /// tripped \p Budget yields `status: timeout` and nothing is cached.
  /// Virtual as a test seam: service_test overrides it to throw, pinning
  /// that a faulting analysis releases its waiters with an error response
  /// instead of stranding them on a never-fulfilled promise.
  virtual ServiceResponse runAnalysis(const ServiceRequest &Req,
                                      uint64_t SrcKey, ExecBudget &Budget);

private:
  /// What the source memo remembers per (loweringKey, source) pair.
  struct CompileMemo {
    bool Ok = false;
    uint64_t ProgramDigest = 0;
    std::string Error;
    /// The full loweringKey + source the entry was stored under. SrcKey is
    /// only a 64-bit hash; mirroring VerdictCache's collision guard, a
    /// lookup whose full key differs is treated as a miss so a hash
    /// collision can never return another program's digest.
    std::string Key;
  };

  ServiceResponse handleAnalyze(const ServiceRequest &Req);

  /// Memo LRU plumbing; all require Lock held.
  CompileMemo *memoLookup(uint64_t SrcKey, const std::string &SrcKeyStr);
  void memoStore(uint64_t SrcKey, CompileMemo M);

  VerdictCache Cache;
  AnalysisPool Pool;

  /// The engine-wide cancel flag every request budget carries; set once by
  /// beginShutdown() and never cleared.
  std::atomic<bool> ShuttingDown{false};

  mutable std::mutex Lock;
  /// srcKey -> compile outcome, LRU-bounded at MemoCapacity entries
  /// (front of MemoOrder = most recently used). Guarded by Lock.
  std::list<std::pair<uint64_t, CompileMemo>> MemoOrder;
  std::unordered_map<uint64_t,
                     std::list<std::pair<uint64_t, CompileMemo>>::iterator>
      MemoIndex;
  uint64_t MemoCapacity;
  uint64_t MemoEvictions = 0;
  /// Exact request identity -> in-flight result, for duplicate
  /// coalescing. Keyed by the full option key + source (not a digest), so
  /// a hash collision can never fuse two different requests.
  std::map<std::string, std::shared_future<ServiceResponse>> InFlight;

  ServiceFault Fault;

  uint64_t Requests = 0;
  uint64_t CacheHits = 0;
  uint64_t AnalysesRun = 0;
  uint64_t CompileErrors = 0;
  uint64_t OverloadedCount = 0;
  uint64_t Coalesced = 0;
  uint64_t Timeouts = 0;
};

} // namespace specai

#endif // SPECAI_SERVICE_SERVICEENGINE_H
