//===- Client.cpp - Thin client for the specaid daemon --------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace specai;

struct ServiceClient::Impl {
  int Fd = -1;
  std::string Buffer;
  std::string LastLine;

  ~Impl() {
    if (Fd >= 0)
      ::close(Fd);
  }

  bool writeAll(const std::string &Line, std::string &Error) {
    size_t Off = 0;
    while (Off < Line.size()) {
      // MSG_NOSIGNAL: a daemon that died mid-request surfaces as an EPIPE
      // error return, not a SIGPIPE that kills the client.
      ssize_t N = ::send(Fd, Line.data() + Off, Line.size() - Off,
                         MSG_NOSIGNAL);
      if (N <= 0) {
        Error = std::string("write: ") + std::strerror(errno);
        return false;
      }
      Off += static_cast<size_t>(N);
    }
    return true;
  }

  bool readLine(std::string &Line, std::string &Error) {
    char Chunk[4096];
    while (true) {
      size_t Nl = Buffer.find('\n');
      if (Nl != std::string::npos) {
        Line = Buffer.substr(0, Nl);
        Buffer.erase(0, Nl + 1);
        return true;
      }
      ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
      if (N < 0) {
        Error = std::string("read: ") + std::strerror(errno);
        return false;
      }
      if (N == 0) {
        Error = "connection closed by the daemon";
        return false;
      }
      Buffer.append(Chunk, static_cast<size_t>(N));
    }
  }
};

ServiceClient::ServiceClient() : I(std::make_unique<Impl>()) {}
ServiceClient::~ServiceClient() = default;

bool ServiceClient::connect(const std::string &SocketPath,
                            std::string &Error) {
  close();
  sockaddr_un Addr{};
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: " + SocketPath;
    return false;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = std::string("connect ") + SocketPath + ": " + std::strerror(errno);
    ::close(Fd);
    return false;
  }
  I->Fd = Fd;
  return true;
}

bool ServiceClient::call(const ServiceRequest &Req, ServiceResponse &Resp,
                         std::string &Error) {
  if (I->Fd < 0) {
    Error = "not connected";
    return false;
  }
  if (!I->writeAll(Req.toJson() + "\n", Error))
    return false;
  std::string Line;
  if (!I->readLine(Line, Error))
    return false;
  if (!ServiceResponse::fromJson(Line, Resp, Error))
    return false;
  I->LastLine = std::move(Line);
  return true;
}

const std::string &ServiceClient::lastLine() const { return I->LastLine; }

bool ServiceClient::connected() const { return I->Fd >= 0; }

void ServiceClient::close() {
  if (I->Fd >= 0) {
    ::close(I->Fd);
    I->Fd = -1;
  }
  I->Buffer.clear();
}
