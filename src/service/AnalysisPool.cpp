//===- AnalysisPool.cpp - Bounded priority worker pool --------------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "service/AnalysisPool.h"

using namespace specai;

AnalysisPool::AnalysisPool(unsigned Jobs, size_t QueueCapacity)
    : QueueCapacity(QueueCapacity == 0 ? 1 : QueueCapacity) {
  if (Jobs == 0) {
    unsigned HW = std::thread::hardware_concurrency();
    Jobs = HW == 0 ? 1 : HW;
  }
  Workers.reserve(Jobs);
  for (unsigned I = 0; I != Jobs; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

AnalysisPool::~AnalysisPool() { shutdown(); }

bool AnalysisPool::tryEnqueue(int64_t Priority, std::function<void()> Job) {
  {
    std::lock_guard<std::mutex> Guard(Lock);
    if (Stopping || Queue.size() >= QueueCapacity) {
      ++Rejected;
      return false;
    }
    Queue.push(Item{Priority, NextSeq++, std::move(Job)});
  }
  WorkReady.notify_one();
  return true;
}

void AnalysisPool::shutdown() {
  {
    std::lock_guard<std::mutex> Guard(Lock);
    if (Stopping && Workers.empty())
      return;
    Stopping = true;
  }
  WorkReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
  Workers.clear();
}

uint64_t AnalysisPool::rejectedCount() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Rejected;
}

uint64_t AnalysisPool::faultedCount() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Faulted;
}

void AnalysisPool::workerLoop() {
  while (true) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Guard(Lock);
      WorkReady.wait(Guard, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      // priority_queue::top is const (heap invariants); the move out of
      // the callable is safe because pop() follows immediately.
      Job = std::move(const_cast<Item &>(Queue.top()).Job);
      Queue.pop();
    }
    try {
      Job();
    } catch (...) {
      // A job that throws must not take the daemon down with
      // std::terminate. The job's own promise machinery reports errors;
      // this counter only surfaces that the safety net was hit.
      std::lock_guard<std::mutex> Guard(Lock);
      ++Faulted;
    }
  }
}
