//===- Server.cpp - Local-socket front end of the specaid daemon ----------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace specai;

namespace {

/// Writes all of \p Line (which must end in '\n') to \p Fd. False on any
/// write error — the connection is beyond saving then. MSG_NOSIGNAL turns
/// a client that vanished before its response was written into an EPIPE
/// return instead of a SIGPIPE that would kill the whole daemon.
bool writeAll(int Fd, const std::string &Line) {
  size_t Off = 0;
  while (Off < Line.size()) {
    ssize_t N = ::send(Fd, Line.data() + Off, Line.size() - Off, MSG_NOSIGNAL);
    if (N <= 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

struct ServiceServer::Impl {
  ServiceEngine &Engine;
  ServerOptions Opts;
  int ListenFd = -1;
  std::string SocketPath;
  std::thread AcceptThread;
  std::atomic<bool> Stopping{false};
  std::atomic<uint64_t> Connections{0};

  std::mutex ConnLock;
  std::condition_variable ConnDone;
  std::vector<std::thread> ConnThreads;
  size_t LiveConnections = 0;
  /// Open connection fds, so stopListening() can shut them down and wake
  /// serveConnection threads blocked in read() on idle clients. An fd is
  /// removed (and closed) under ConnLock before its thread exits, so a
  /// shutdown never touches a recycled descriptor.
  std::vector<int> LiveFds;

  std::mutex DoneLock;
  std::condition_variable Done;
  bool Finished = false;

  explicit Impl(ServiceEngine &Engine, const ServerOptions &Opts)
      : Engine(Engine), Opts(Opts) {
    // Injected fault: shrink the framing limit so ordinary requests trip
    // the oversized-request rejection path a 1 MiB default never would in
    // tests.
    if (Opts.Fault == ServiceFault::OversizedRequest)
      this->Opts.MaxRequestBytes = 128;
  }

  /// Response writer honoring the SlowClient rung: dribble the line out a
  /// few bytes at a time with pauses, modeling a peer whose socket buffer
  /// drains slowly. Containment: only this connection's thread is slowed;
  /// other connections and shutdown proceed (stopListening() shuts this fd
  /// down, which makes the next send fail and the thread exit).
  bool writeLine(int Fd, const std::string &Line) {
    if (Opts.Fault != ServiceFault::SlowClient)
      return writeAll(Fd, Line);
    for (size_t Off = 0; Off < Line.size(); Off += 7) {
      if (!writeAll(Fd, Line.substr(Off, 7)))
        return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }

  void acceptLoop() {
    while (!Stopping.load()) {
      int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd < 0) {
        if (Stopping.load())
          break;
        if (errno == EINTR)
          continue;
        break; // Listener is gone; nothing left to accept.
      }
      ++Connections;
      std::lock_guard<std::mutex> Guard(ConnLock);
      ++LiveConnections;
      LiveFds.push_back(Fd);
      ConnThreads.emplace_back([this, Fd] {
        serveConnection(Fd);
        std::lock_guard<std::mutex> G(ConnLock);
        LiveFds.erase(std::remove(LiveFds.begin(), LiveFds.end(), Fd),
                      LiveFds.end());
        ::close(Fd);
        --LiveConnections;
        ConnDone.notify_all();
      });
    }
    // Wait for in-flight connections before signaling wait().
    {
      std::unique_lock<std::mutex> Guard(ConnLock);
      ConnDone.wait(Guard, [this] { return LiveConnections == 0; });
    }
    std::lock_guard<std::mutex> Guard(DoneLock);
    Finished = true;
    Done.notify_all();
  }

  void serveConnection(int Fd) {
    std::string Buffer;
    char Chunk[4096];
    while (true) {
      // Drain complete lines already buffered before reading more.
      size_t Nl;
      while ((Nl = Buffer.find('\n')) != std::string::npos) {
        std::string Line = Buffer.substr(0, Nl);
        Buffer.erase(0, Nl + 1);
        if (Line.empty())
          continue;
        if (Line.size() > Opts.MaxRequestBytes) {
          rejectOversized(Fd);
          goto done;
        }
        if (!handleLine(Fd, Line))
          goto done;
      }
      // Framing bound, streaming side: everything buffered is one
      // unterminated line at this point. A peer streaming an endless line
      // (malicious or just broken) is cut off here instead of growing the
      // daemon's heap without bound — without waiting for a newline that
      // may never come.
      if (Buffer.size() > Opts.MaxRequestBytes) {
        rejectOversized(Fd);
        break;
      }
      ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
      if (N <= 0)
        break;
      Buffer.append(Chunk, static_cast<size_t>(N));
    }
  done:; // The spawning lambda closes Fd, under ConnLock with LiveFds.
  }

  /// Tells a peer its request line blew the framing bound, before the
  /// connection closes. Best-effort: the peer may already be gone.
  void rejectOversized(int Fd) {
    ServiceResponse R;
    R.Status = ServiceStatus::Error;
    R.Error = "request line exceeds " +
              std::to_string(Opts.MaxRequestBytes) + " bytes";
    writeLine(Fd, R.toJson() + "\n");
  }

  /// Handles one request line; false ends the connection (write failure
  /// or a shutdown request, whose ack is the last thing we send).
  bool handleLine(int Fd, const std::string &Line) {
    ServiceRequest Req;
    std::string Error;
    if (!ServiceRequest::fromJson(Line, Req, Error)) {
      ServiceResponse R;
      R.Status = ServiceStatus::Error;
      R.Error = Error;
      return writeLine(Fd, R.toJson() + "\n");
    }
    switch (Req.Op) {
    case ServiceOp::Analyze:
    case ServiceOp::Repair:
    case ServiceOp::Ping:
      return writeLine(Fd, Engine.handle(Req).toJson() + "\n");
    case ServiceOp::Stats:
      return writeLine(Fd, Engine.statsJson(Req.Id) + "\n");
    case ServiceOp::Shutdown: {
      ServiceResponse R;
      R.Status = ServiceStatus::Ok;
      R.Id = Req.Id;
      writeLine(Fd, R.toJson() + "\n");
      // Cancel in-flight analyses before tearing down the transport:
      // their budgets poll the engine's cancel flag, so the drain in
      // acceptLoop finishes in polls, not fixpoints.
      Engine.beginShutdown();
      stopListening();
      return false;
    }
    }
    return false;
  }

  void stopListening() {
    if (Stopping.exchange(true))
      return;
    // shutdown() wakes the blocked accept(); close follows in teardown.
    if (ListenFd >= 0)
      ::shutdown(ListenFd, SHUT_RDWR);
    // Also wake every connection thread parked in read() on an idle
    // client (the persistent editor connections docs/SERVICE.md
    // advertises): their reads return 0 and the threads exit, so a
    // shutdown request cannot hang the daemon until all clients leave.
    // Read side only: a thread mid-handle() still owes its client a
    // response (e.g. the `timeout` for an analysis the shutdown just
    // cancelled), and the write side must stay open to deliver it.
    std::lock_guard<std::mutex> Guard(ConnLock);
    for (int Fd : LiveFds)
      ::shutdown(Fd, SHUT_RD);
  }
};

ServiceServer::ServiceServer(ServiceEngine &Engine, const ServerOptions &Opts)
    : I(std::make_unique<Impl>(Engine, Opts)) {}

ServiceServer::~ServiceServer() {
  stop();
  wait();
  if (I->ListenFd >= 0)
    ::close(I->ListenFd);
  if (!I->SocketPath.empty())
    ::unlink(I->SocketPath.c_str());
}

bool ServiceServer::start(const std::string &SocketPath, std::string &Error) {
  sockaddr_un Addr{};
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: " + SocketPath;
    return false;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(SocketPath.c_str()); // Stale socket from a dead daemon.
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = std::string("bind ") + SocketPath + ": " + std::strerror(errno);
    ::close(Fd);
    return false;
  }
  if (::listen(Fd, 64) < 0) {
    Error = std::string("listen: ") + std::strerror(errno);
    ::close(Fd);
    ::unlink(SocketPath.c_str());
    return false;
  }
  I->ListenFd = Fd;
  I->SocketPath = SocketPath;
  I->AcceptThread = std::thread([this] { I->acceptLoop(); });
  return true;
}

void ServiceServer::wait() {
  if (!I->AcceptThread.joinable())
    return;
  {
    std::unique_lock<std::mutex> Guard(I->DoneLock);
    I->Done.wait(Guard, [this] { return I->Finished; });
  }
  I->AcceptThread.join();
  // The per-connection threads have all signaled completion; join them so
  // their std::thread objects can be destroyed.
  std::lock_guard<std::mutex> Guard(I->ConnLock);
  for (std::thread &T : I->ConnThreads)
    if (T.joinable())
      T.join();
  I->ConnThreads.clear();
}

void ServiceServer::stop() { I->stopListening(); }

uint64_t ServiceServer::connectionCount() const {
  return I->Connections.load();
}
