//===- Protocol.cpp - specaid request/response wire protocol --------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "fuzz/StateDigest.h"
#include "service/Json.h"

#include <cstdio>

using namespace specai;

const char *specai::serviceOpName(ServiceOp Op) {
  switch (Op) {
  case ServiceOp::Analyze:
    return "analyze";
  case ServiceOp::Repair:
    return "repair";
  case ServiceOp::Ping:
    return "ping";
  case ServiceOp::Stats:
    return "stats";
  case ServiceOp::Shutdown:
    return "shutdown";
  }
  return "?";
}

bool specai::parseServiceOp(const std::string &Name, ServiceOp &Out) {
  for (ServiceOp Op : {ServiceOp::Analyze, ServiceOp::Repair, ServiceOp::Ping,
                       ServiceOp::Stats, ServiceOp::Shutdown})
    if (Name == serviceOpName(Op)) {
      Out = Op;
      return true;
    }
  return false;
}

const char *specai::serviceStatusName(ServiceStatus S) {
  switch (S) {
  case ServiceStatus::Ok:
    return "ok";
  case ServiceStatus::Error:
    return "error";
  case ServiceStatus::Overloaded:
    return "overloaded";
  case ServiceStatus::Timeout:
    return "timeout";
  }
  return "?";
}

bool specai::parseServiceStatus(const std::string &Name, ServiceStatus &Out) {
  for (ServiceStatus S :
       {ServiceStatus::Ok, ServiceStatus::Error, ServiceStatus::Overloaded,
        ServiceStatus::Timeout})
    if (Name == serviceStatusName(S)) {
      Out = S;
      return true;
    }
  return false;
}

const char *specai::serviceFaultName(ServiceFault F) {
  switch (F) {
  case ServiceFault::None:
    return "none";
  case ServiceFault::SpillTruncate:
    return "spill-truncate";
  case ServiceFault::SpillGarbage:
    return "spill-garbage";
  case ServiceFault::WorkerStall:
    return "worker-stall";
  case ServiceFault::AnalysisThrow:
    return "analysis-throw";
  case ServiceFault::OversizedRequest:
    return "oversized-request";
  case ServiceFault::SlowClient:
    return "slow-client";
  }
  return "?";
}

bool specai::parseServiceFault(const std::string &Name, ServiceFault &Out) {
  for (ServiceFault F :
       {ServiceFault::None, ServiceFault::SpillTruncate,
        ServiceFault::SpillGarbage, ServiceFault::WorkerStall,
        ServiceFault::AnalysisThrow, ServiceFault::OversizedRequest,
        ServiceFault::SlowClient}) {
    if (Name == serviceFaultName(F)) {
      Out = F;
      return true;
    }
  }
  return false;
}

namespace {

const char *boundingName(BoundingMode Mode) {
  return Mode == BoundingMode::Fixed ? "fixed" : "dynamic";
}

bool parseBounding(const std::string &Name, BoundingMode &Out) {
  if (Name == "fixed")
    Out = BoundingMode::Fixed;
  else if (Name == "dynamic")
    Out = BoundingMode::Dynamic;
  else
    return false;
  return true;
}

bool parseStrategy(const std::string &Name, MergeStrategy &Out) {
  for (MergeStrategy S :
       {MergeStrategy::NoMerge, MergeStrategy::MergeAtExit,
        MergeStrategy::JustInTime, MergeStrategy::MergeAtRollback})
    if (Name == mergeStrategyName(S)) {
      Out = S;
      return true;
    }
  return false;
}

/// Fetches an integer field, rejecting values outside [0, Max].
bool takeUInt(const JsonObject &O, const char *Key, uint64_t Max,
              uint64_t &Out, std::string &Error) {
  auto It = O.find(Key);
  if (It == O.end())
    return true; // Absent: keep the default.
  if (It->second.K != JsonValue::Kind::Int || It->second.I < 0 ||
      static_cast<uint64_t>(It->second.I) > Max) {
    Error = std::string("request: bad '") + Key + "'";
    return false;
  }
  Out = static_cast<uint64_t>(It->second.I);
  return true;
}

bool takeBool(const JsonObject &O, const char *Key, bool &Out,
              std::string &Error) {
  auto It = O.find(Key);
  if (It == O.end())
    return true;
  if (It->second.K != JsonValue::Kind::Bool) {
    Error = std::string("request: bad '") + Key + "'";
    return false;
  }
  Out = It->second.B;
  return true;
}

const std::string *takeString(const JsonObject &O, const char *Key) {
  auto It = O.find(Key);
  if (It == O.end() || It->second.K != JsonValue::Kind::String)
    return nullptr;
  return &It->second.S;
}

} // namespace

MustHitOptions ServiceRequest::toMustHitOptions() const {
  MustHitOptions O;
  O.Cache = Cache;
  O.Speculative = Speculative;
  O.UseShadow = UseShadow;
  O.Strategy = Strategy;
  O.DepthMiss = DepthMiss;
  O.DepthHit = DepthHit;
  O.Bounding = Bounding;
  O.IterativeDepthRefinement = Refine;
  return O;
}

LoweringOptions ServiceRequest::toLoweringOptions() const {
  LoweringOptions O;
  O.EntryFunction = Entry;
  O.Mode = Mode;
  return O;
}

RunRequest ServiceRequest::toRunRequest() const {
  RunRequest R;
  R.Source = Source;
  R.Lowering = toLoweringOptions();
  R.Options = toMustHitOptions();
  R.DetectLeaks = DetectLeaks;
  return R;
}

std::string ServiceRequest::loweringKey() const {
  // Entry and mode are the only lowering knobs the protocol exposes; both
  // change the compiled IR, so both key the source -> digest memo.
  std::string K = "entry=";
  K += Entry;
  K += ";lowering=";
  K += loweringModeName(Mode);
  return K;
}

std::string ServiceRequest::optionKey() const {
  // Every verdict-visible option in a fixed order. The lowering knobs are
  // included even though they also shift the program digest: the key
  // string doubles as the collision guard, and a guard that under-reports
  // the request cannot distinguish colliding digests.
  std::string K = loweringKey();
  K += ";lines=";
  K += std::to_string(Cache.NumLines);
  K += ";line_size=";
  K += std::to_string(Cache.LineSize);
  K += ";assoc=";
  K += std::to_string(Cache.Associativity);
  K += ";policy=";
  K += replacementPolicyName(Cache.Policy);
  K += ";spec=";
  K += Speculative ? '1' : '0';
  K += ";shadow=";
  K += UseShadow ? '1' : '0';
  K += ";strategy=";
  K += mergeStrategyName(Strategy);
  K += ";depth_miss=";
  K += std::to_string(DepthMiss);
  K += ";depth_hit=";
  K += std::to_string(DepthHit);
  K += ";bounding=";
  K += boundingName(Bounding);
  K += ";refine=";
  K += Refine ? '1' : '0';
  K += ";leaks=";
  K += DetectLeaks ? '1' : '0';
  // Appended only for the repair verb, so every analyze key (and with it
  // every cached analyze verdict) predating the verb is unchanged.
  if (Op == ServiceOp::Repair)
    K += ";op=repair";
  return K;
}

std::string ServiceRequest::toJson() const {
  JsonWriter W;
  W.field("op", serviceOpName(Op));
  W.field("id", Id);
  if (Priority != 0)
    W.field("priority", Priority);
  if (Op != ServiceOp::Analyze && Op != ServiceOp::Repair)
    return W.finish();
  if (TimeoutMs != 0)
    W.field("timeout_ms", TimeoutMs);
  if (MaxSteps != 0)
    W.field("max_iterations", MaxSteps);
  W.field("source", Source);
  W.field("entry", Entry);
  W.field("lowering", loweringModeName(Mode));
  W.field("lines", static_cast<uint64_t>(Cache.NumLines));
  W.field("line_size", static_cast<uint64_t>(Cache.LineSize));
  W.field("assoc", static_cast<uint64_t>(Cache.Associativity));
  W.field("policy", replacementPolicyName(Cache.Policy));
  W.field("strategy", mergeStrategyName(Strategy));
  W.field("bounding", boundingName(Bounding));
  W.field("spec", Speculative);
  W.field("shadow", UseShadow);
  W.field("depth_miss", static_cast<uint64_t>(DepthMiss));
  W.field("depth_hit", static_cast<uint64_t>(DepthHit));
  W.field("refine", Refine);
  W.field("leaks", DetectLeaks);
  return W.finish();
}

bool ServiceRequest::fromJson(const std::string &Line, ServiceRequest &Out,
                              std::string &Error) {
  JsonObject O;
  if (!parseJsonObject(Line, O, Error))
    return false;
  Out = ServiceRequest();

  static const char *const Known[] = {
      "op",       "id",      "priority",  "source",    "entry",
      "lowering", "lines",   "line_size", "assoc",     "policy",
      "strategy", "bounding", "spec",     "shadow",    "depth_miss",
      "depth_hit", "refine", "leaks",     "timeout_ms", "max_iterations"};
  for (const auto &[Key, Value] : O) {
    bool Ok = false;
    for (const char *K : Known)
      Ok |= Key == K;
    if (!Ok) {
      Error = "request: unknown key '" + Key + "'";
      return false;
    }
  }

  if (const std::string *S = takeString(O, "op")) {
    if (!parseServiceOp(*S, Out.Op)) {
      Error = "request: unknown op '" + *S + "'";
      return false;
    }
  } else if (O.count("op")) {
    Error = "request: bad 'op'";
    return false;
  }

  uint64_t U = 0;
  if (!takeUInt(O, "id", UINT64_MAX >> 1, U, Error))
    return false;
  Out.Id = O.count("id") ? U : 0;
  if (auto It = O.find("priority"); It != O.end()) {
    if (It->second.K != JsonValue::Kind::Int) {
      Error = "request: bad 'priority'";
      return false;
    }
    Out.Priority = It->second.I;
  }

  if (Out.Op != ServiceOp::Analyze && Out.Op != ServiceOp::Repair) {
    // Control requests must not smuggle analysis fields; a stats probe
    // carrying a 'source' is a client bug worth surfacing.
    for (const char *K : {"source", "entry", "lowering", "lines", "line_size",
                          "assoc", "policy", "strategy", "bounding", "spec",
                          "shadow", "depth_miss", "depth_hit", "refine",
                          "leaks", "timeout_ms", "max_iterations"})
      if (O.count(K)) {
        Error = std::string("request: '") + K + "' is not valid for op '" +
                serviceOpName(Out.Op) + "'";
        return false;
      }
    return true;
  }

  const std::string *Src = takeString(O, "source");
  if (!Src) {
    Error = "request: analyze needs a string 'source'";
    return false;
  }
  Out.Source = *Src;
  if (const std::string *S = takeString(O, "entry")) {
    if (S->empty()) {
      Error = "request: empty 'entry'";
      return false;
    }
    Out.Entry = *S;
  }
  if (const std::string *S = takeString(O, "lowering")) {
    if (!parseLoweringMode(*S, Out.Mode)) {
      Error = "request: unknown lowering '" + *S + "'";
      return false;
    }
  }
  if (const std::string *S = takeString(O, "policy")) {
    if (!parseReplacementPolicy(*S, Out.Cache.Policy)) {
      Error = "request: unknown policy '" + *S + "'";
      return false;
    }
  }
  if (const std::string *S = takeString(O, "strategy")) {
    if (!parseStrategy(*S, Out.Strategy)) {
      Error = "request: unknown strategy '" + *S + "'";
      return false;
    }
  }
  if (const std::string *S = takeString(O, "bounding")) {
    if (!parseBounding(*S, Out.Bounding)) {
      Error = "request: unknown bounding '" + *S + "'";
      return false;
    }
  }

  if (!takeUInt(O, "lines", 1u << 24, U, Error))
    return false;
  if (O.count("lines"))
    Out.Cache.NumLines = static_cast<uint32_t>(U);
  if (!takeUInt(O, "line_size", 1u << 16, U, Error))
    return false;
  if (O.count("line_size"))
    Out.Cache.LineSize = static_cast<uint32_t>(U);
  if (!takeUInt(O, "assoc", 1u << 24, U, Error))
    return false;
  if (O.count("assoc"))
    Out.Cache.Associativity = static_cast<uint32_t>(U);
  if (!takeUInt(O, "depth_miss", 1u << 20, U, Error))
    return false;
  if (O.count("depth_miss"))
    Out.DepthMiss = static_cast<uint32_t>(U);
  if (!takeUInt(O, "depth_hit", 1u << 20, U, Error))
    return false;
  if (O.count("depth_hit"))
    Out.DepthHit = static_cast<uint32_t>(U);

  if (!takeUInt(O, "timeout_ms", UINT64_MAX >> 1, Out.TimeoutMs, Error))
    return false;
  if (!takeUInt(O, "max_iterations", UINT64_MAX >> 1, Out.MaxSteps, Error))
    return false;

  if (!takeBool(O, "spec", Out.Speculative, Error) ||
      !takeBool(O, "shadow", Out.UseShadow, Error) ||
      !takeBool(O, "refine", Out.Refine, Error) ||
      !takeBool(O, "leaks", Out.DetectLeaks, Error))
    return false;

  if (!Out.Cache.isValid()) {
    Error = "request: invalid cache geometry";
    return false;
  }
  return true;
}

ServiceResponse ServiceResponse::fromRow(const BatchRow &Row) {
  ServiceResponse R;
  R.Status = ServiceStatus::Ok;
  R.AccessNodes = Row.AccessNodes;
  R.MissCount = Row.MissCount;
  R.SpMissCount = Row.SpMissCount;
  R.BranchCount = Row.BranchCount;
  R.Iterations = Row.Iterations;
  R.RefinementRounds = Row.RefinementRounds;
  R.Converged = Row.Converged;
  R.LeaksChecked = Row.LeaksChecked;
  R.LeakCount = Row.LeakCount;
  R.ProvenLeakFree = Row.ProvenLeakFree;
  R.LeakSites = Row.LeakSites;
  R.Seconds = Row.Seconds;
  R.VerdictDigest = verdictDigest(Row);
  return R;
}

bool ServiceResponse::sameVerdict(const ServiceResponse &RHS) const {
  return Status == RHS.Status && VerdictDigest == RHS.VerdictDigest &&
         AccessNodes == RHS.AccessNodes && MissCount == RHS.MissCount &&
         SpMissCount == RHS.SpMissCount && BranchCount == RHS.BranchCount &&
         Iterations == RHS.Iterations &&
         RefinementRounds == RHS.RefinementRounds &&
         Converged == RHS.Converged && LeaksChecked == RHS.LeaksChecked &&
         LeakCount == RHS.LeakCount && ProvenLeakFree == RHS.ProvenLeakFree &&
         LeakSites == RHS.LeakSites && RepairChecked == RHS.RepairChecked &&
         Repaired == RHS.Repaired && LeaksBefore == RHS.LeaksBefore &&
         LeaksAfter == RHS.LeaksAfter && WcetBefore == RHS.WcetBefore &&
         WcetAfter == RHS.WcetAfter && Mitigations == RHS.Mitigations &&
         PatchedIr == RHS.PatchedIr;
}

std::string ServiceResponse::toJson() const {
  JsonWriter W;
  W.field("status", serviceStatusName(Status));
  W.field("id", Id);
  if (Status != ServiceStatus::Ok) {
    if (!Error.empty())
      W.field("error", Error);
    if (RequestDigest)
      W.hexField("request_digest", RequestDigest);
    return W.finish();
  }
  W.field("cached", Cached);
  W.hexField("request_digest", RequestDigest);
  W.hexField("verdict_digest", VerdictDigest);
  W.field("access_nodes", AccessNodes);
  W.field("miss_count", MissCount);
  W.field("sp_miss_count", SpMissCount);
  W.field("branch_count", BranchCount);
  W.field("iterations", Iterations);
  W.field("refinement_rounds", static_cast<uint64_t>(RefinementRounds));
  W.field("converged", Converged);
  W.field("leaks_checked", LeaksChecked);
  W.field("leak_count", LeakCount);
  W.field("proven_leak_free", ProvenLeakFree);
  if (!LeakSites.empty()) {
    std::string Joined;
    for (const std::string &S : LeakSites) {
      if (!Joined.empty())
        Joined += '\n';
      Joined += S;
    }
    W.field("leak_sites", Joined);
  }
  if (RepairChecked) {
    W.field("repair_checked", true);
    W.field("repaired", Repaired);
    W.field("leaks_before", LeaksBefore);
    W.field("leaks_after", LeaksAfter);
    W.field("wcet_before", WcetBefore);
    W.field("wcet_after", WcetAfter);
    if (!Mitigations.empty()) {
      std::string Joined;
      for (const std::string &M : Mitigations) {
        if (!Joined.empty())
          Joined += '\n';
        Joined += M;
      }
      W.field("mitigations", Joined);
    }
    if (!PatchedIr.empty())
      W.field("patched_ir", PatchedIr);
  }
  W.field("seconds", Seconds);
  return W.finish();
}

bool ServiceResponse::fromJson(const std::string &Line, ServiceResponse &Out,
                               std::string &Error) {
  JsonObject O;
  if (!parseJsonObject(Line, O, Error))
    return false;
  Out = ServiceResponse();

  const std::string *S = takeString(O, "status");
  if (!S || !parseServiceStatus(*S, Out.Status)) {
    Error = "response: missing or unknown 'status'";
    return false;
  }
  uint64_t U = 0;
  if (!takeUInt(O, "id", UINT64_MAX >> 1, U, Error))
    return false;
  Out.Id = O.count("id") ? U : 0;
  if (const std::string *E = takeString(O, "error"))
    Out.Error = *E;
  if (const std::string *H = takeString(O, "request_digest"))
    if (!parseHexU64(*H, Out.RequestDigest)) {
      Error = "response: bad 'request_digest'";
      return false;
    }
  if (Out.Status != ServiceStatus::Ok)
    return true;

  if (const std::string *H = takeString(O, "verdict_digest")) {
    if (!parseHexU64(*H, Out.VerdictDigest)) {
      Error = "response: bad 'verdict_digest'";
      return false;
    }
  }
  if (!takeBool(O, "cached", Out.Cached, Error))
    return false;
  if (!takeUInt(O, "access_nodes", UINT64_MAX >> 1, Out.AccessNodes, Error) ||
      !takeUInt(O, "miss_count", UINT64_MAX >> 1, Out.MissCount, Error) ||
      !takeUInt(O, "sp_miss_count", UINT64_MAX >> 1, Out.SpMissCount, Error) ||
      !takeUInt(O, "branch_count", UINT64_MAX >> 1, Out.BranchCount, Error) ||
      !takeUInt(O, "iterations", UINT64_MAX >> 1, Out.Iterations, Error) ||
      !takeUInt(O, "leak_count", UINT64_MAX >> 1, Out.LeakCount, Error) ||
      !takeUInt(O, "proven_leak_free", UINT64_MAX >> 1, Out.ProvenLeakFree,
                Error))
    return false;
  U = 1;
  if (!takeUInt(O, "refinement_rounds", 1u << 20, U, Error))
    return false;
  Out.RefinementRounds = O.count("refinement_rounds")
                             ? static_cast<unsigned>(U)
                             : Out.RefinementRounds;
  if (!takeBool(O, "converged", Out.Converged, Error) ||
      !takeBool(O, "leaks_checked", Out.LeaksChecked, Error))
    return false;
  if (const std::string *Sites = takeString(O, "leak_sites")) {
    size_t Start = 0;
    while (Start <= Sites->size()) {
      size_t End = Sites->find('\n', Start);
      if (End == std::string::npos) {
        Out.LeakSites.push_back(Sites->substr(Start));
        break;
      }
      Out.LeakSites.push_back(Sites->substr(Start, End - Start));
      Start = End + 1;
    }
  }
  if (!takeBool(O, "repair_checked", Out.RepairChecked, Error))
    return false;
  if (Out.RepairChecked) {
    if (!takeBool(O, "repaired", Out.Repaired, Error) ||
        !takeUInt(O, "leaks_before", UINT64_MAX >> 1, Out.LeaksBefore,
                  Error) ||
        !takeUInt(O, "leaks_after", UINT64_MAX >> 1, Out.LeaksAfter, Error) ||
        !takeUInt(O, "wcet_before", UINT64_MAX >> 1, Out.WcetBefore, Error) ||
        !takeUInt(O, "wcet_after", UINT64_MAX >> 1, Out.WcetAfter, Error))
      return false;
    if (const std::string *Ms = takeString(O, "mitigations")) {
      size_t Start = 0;
      while (Start <= Ms->size()) {
        size_t End = Ms->find('\n', Start);
        if (End == std::string::npos) {
          Out.Mitigations.push_back(Ms->substr(Start));
          break;
        }
        Out.Mitigations.push_back(Ms->substr(Start, End - Start));
        Start = End + 1;
      }
    }
    if (const std::string *P = takeString(O, "patched_ir"))
      Out.PatchedIr = *P;
  }
  if (auto It = O.find("seconds"); It != O.end())
    Out.Seconds = It->second.asDouble(0);
  return true;
}

uint64_t specai::verdictDigest(const BatchRow &Row) {
  // Canonical rendering of everything sameResults() compares except the
  // label (a service response has none) and the configuration echo (the
  // request digest already covers the configuration). Field order and
  // separators are part of the digest contract pinned by service_test.
  std::string S = "access_nodes=";
  S += std::to_string(Row.AccessNodes);
  S += ";miss_count=";
  S += std::to_string(Row.MissCount);
  S += ";sp_miss_count=";
  S += std::to_string(Row.SpMissCount);
  S += ";branch_count=";
  S += std::to_string(Row.BranchCount);
  S += ";iterations=";
  S += std::to_string(Row.Iterations);
  S += ";refinement_rounds=";
  S += std::to_string(Row.RefinementRounds);
  S += ";converged=";
  S += Row.Converged ? '1' : '0';
  S += ";leaks_checked=";
  S += Row.LeaksChecked ? '1' : '0';
  S += ";leak_count=";
  S += std::to_string(Row.LeakCount);
  S += ";proven_leak_free=";
  S += std::to_string(Row.ProvenLeakFree);
  for (const std::string &Site : Row.LeakSites) {
    S += ";site=";
    S += Site;
  }
  return fnv1a(S);
}

uint64_t specai::repairVerdictDigest(const ServiceResponse &R) {
  // Canonical rendering of the repair verdict: what the synthesizer chose
  // and what it claims, plus the patched artifact itself. Equal digests
  // mean the same mitigations, the same WCET claim, and a bit-identical
  // patched program.
  std::string S = "repaired=";
  S += R.Repaired ? '1' : '0';
  S += ";leaks_before=";
  S += std::to_string(R.LeaksBefore);
  S += ";leaks_after=";
  S += std::to_string(R.LeaksAfter);
  S += ";wcet_before=";
  S += std::to_string(R.WcetBefore);
  S += ";wcet_after=";
  S += std::to_string(R.WcetAfter);
  for (const std::string &M : R.Mitigations) {
    S += ";mitigation=";
    S += M;
  }
  S += ";patched=";
  S += R.PatchedIr;
  return fnv1a(S);
}

uint64_t specai::requestDigest(uint64_t ProgramDigest,
                               const ServiceRequest &Req) {
  return fnv1a(Req.optionKey(), ProgramDigest);
}

std::string specai::requestKeyString(uint64_t ProgramDigest,
                                     const ServiceRequest &Req) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "program=0x%016llx;",
                static_cast<unsigned long long>(ProgramDigest));
  return Buf + Req.optionKey();
}
