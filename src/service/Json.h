//===- Json.h - Minimal flat JSON for the specaid protocol ------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately tiny JSON subset for the specaid wire protocol
/// (docs/SERVICE.md): one *flat* object per line, values restricted to
/// strings, integers, doubles, booleans, and null. Nested objects and
/// arrays are rejected — the protocol never needs them, and a parser that
/// cannot recurse cannot be driven into deep-nesting resource exhaustion
/// by a hostile client. Strings round-trip arbitrary bytes: the writer
/// escapes control characters (so multi-line program source fits on one
/// request line) and the parser understands the standard \uXXXX escapes.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_SERVICE_JSON_H
#define SPECAI_SERVICE_JSON_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace specai {

/// One parsed scalar value of a flat JSON object.
struct JsonValue {
  enum class Kind { Null, Bool, Int, Double, String };
  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  double D = 0;
  std::string S;

  /// Convenience coercions (a JSON int also reads as double).
  bool asBool(bool Default) const { return K == Kind::Bool ? B : Default; }
  int64_t asInt(int64_t Default) const {
    return K == Kind::Int ? I : Default;
  }
  double asDouble(double Default) const {
    if (K == Kind::Double)
      return D;
    if (K == Kind::Int)
      return static_cast<double>(I);
    return Default;
  }
  const std::string &asString(const std::string &Default) const {
    return K == Kind::String ? S : Default;
  }
};

/// Key -> value map of one flat object. std::map keeps iteration order
/// deterministic, which keeps re-serialized objects byte-stable.
using JsonObject = std::map<std::string, JsonValue>;

/// JSON string escaping of \p Text (quotes not included).
std::string jsonEscape(std::string_view Text);

/// Incremental writer for one flat JSON object on a single line.
class JsonWriter {
public:
  JsonWriter() : Out("{") {}

  void field(std::string_view Key, std::string_view Value);
  void field(std::string_view Key, const char *Value) {
    field(Key, std::string_view(Value));
  }
  void field(std::string_view Key, bool Value);
  void field(std::string_view Key, int64_t Value);
  void field(std::string_view Key, uint64_t Value);
  void field(std::string_view Key, double Value);
  /// 0x-prefixed fixed-width hex rendering, used for 64-bit digests (a
  /// JSON number could not hold them losslessly).
  void hexField(std::string_view Key, uint64_t Value);

  /// Closes the object and returns it. The writer is spent afterwards.
  std::string finish() {
    Out += "}";
    return std::move(Out);
  }

private:
  void key(std::string_view Key);

  std::string Out;
  bool First = true;
};

/// Parses one flat JSON object from \p Text into \p Out. Returns false and
/// fills \p Error on malformed input, nested values, duplicate keys, or
/// trailing garbage. \p Out is cleared first.
bool parseJsonObject(std::string_view Text, JsonObject &Out,
                     std::string &Error);

/// Parses a "0x..." hex rendering produced by JsonWriter::hexField.
/// Returns false on anything else.
bool parseHexU64(const std::string &Text, uint64_t &Out);

} // namespace specai

#endif // SPECAI_SERVICE_JSON_H
