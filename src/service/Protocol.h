//===- Protocol.h - specaid request/response wire protocol ------*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The specaid wire protocol (docs/SERVICE.md): newline-delimited flat
/// JSON objects over a local stream socket. One request line yields
/// exactly one response line. The request carries the program source plus
/// *every* option that can change a verdict; the response carries either a
/// condensed verdict (the same counters a BatchRow holds), an error, or an
/// explicit `overloaded` rejection — the daemon never degrades into
/// unbounded queueing latency.
///
/// Cache keying lives here too, so every consumer (engine, tests, bench,
/// CLI) derives keys the same way:
///
///   program digest  = FNV-1a over the lowered IR (driver runRequest)
///   option key      = canonical string of all verdict-visible options
///   request digest  = FNV-1a(option key, seeded with program digest)
///   verdict digest  = FNV-1a over the canonical verdict rendering
///
/// The request digest addresses the verdict cache; the verdict digest lets
/// clients assert bit-identical results against single-shot `specai-cli
/// --digest` runs without shipping every counter through shell plumbing.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_SERVICE_PROTOCOL_H
#define SPECAI_SERVICE_PROTOCOL_H

#include "driver/BatchRunner.h"

#include <cstdint>
#include <string>

namespace specai {

/// Request kinds. Analyze and Repair are the workloads; the rest are
/// daemon control.
enum class ServiceOp : uint8_t {
  Analyze,  ///< Compile + analyze (or serve from the verdict cache).
  Repair,   ///< Compile + synthesize a minimum-cost leak repair
            ///< (repair/MitigationSynth.h); cached like Analyze under an
            ///< option key extended with `op=repair`.
  Ping,     ///< Liveness probe; responds ok immediately.
  Stats,    ///< Cache/pool counters as a JSON response.
  Shutdown, ///< Acknowledge, then stop the server loop.
};

const char *serviceOpName(ServiceOp Op);
bool parseServiceOp(const std::string &Name, ServiceOp &Out);

/// One analysis request. Field-for-field this is RunRequest flattened
/// into wire-friendly scalars, plus queueing metadata (Id, Priority).
struct ServiceRequest {
  ServiceOp Op = ServiceOp::Analyze;
  /// Client-chosen correlation id, echoed verbatim in the response.
  uint64_t Id = 0;
  /// Higher runs first when misses queue on the analysis pool.
  int64_t Priority = 0;
  /// Wall-clock budget in milliseconds (0 = unlimited). Measured from the
  /// moment the engine accepts the request; covers queueing and analysis.
  /// An exceeded budget answers `status: timeout`, which is never cached.
  /// Queueing metadata like Id/Priority: excluded from optionKey().
  uint64_t TimeoutMs = 0;
  /// Fixpoint step cap across every engine invocation of the request
  /// (worklist pops; 0 = unlimited). Also queueing metadata — it bounds
  /// *whether* the analysis finishes, never what a finished verdict says.
  uint64_t MaxSteps = 0;

  std::string Source;
  std::string Entry = "main";
  LoweringMode Mode = LoweringMode::InlineUnroll;

  CacheConfig Cache = CacheConfig::paperDefault();
  bool Speculative = true;
  bool UseShadow = true;
  MergeStrategy Strategy = MergeStrategy::JustInTime;
  uint32_t DepthMiss = 200;
  uint32_t DepthHit = 20;
  BoundingMode Bounding = BoundingMode::Dynamic;
  bool Refine = false;
  bool DetectLeaks = true;

  /// The analysis options this request denotes (everything the fixpoint
  /// sees); bit-identical to what `specai-cli` builds from equivalent
  /// flags.
  MustHitOptions toMustHitOptions() const;
  LoweringOptions toLoweringOptions() const;
  /// The full driver-level request (source + options).
  RunRequest toRunRequest() const;

  /// Canonical rendering of every option that can change the verdict —
  /// the non-program half of the cache key. Excludes Id and Priority
  /// (queueing metadata must not split cache entries).
  std::string optionKey() const;
  /// Canonical rendering of the options that change *compilation* only;
  /// keys the source -> program-digest memo.
  std::string loweringKey() const;

  std::string toJson() const;
  /// Parses one request line. Unknown keys are rejected (a typo'd option
  /// silently falling back to a default would poison the cache key
  /// discipline). Returns false and fills \p Error on malformed input.
  static bool fromJson(const std::string &Line, ServiceRequest &Out,
                       std::string &Error);
};

/// Response status. Overloaded is backpressure: the bounded analysis
/// queue was full, nothing was scheduled, and the client should retry.
/// Timeout is a spent budget: the request's `timeout_ms`/`max_iterations`
/// allowance ran out (or the daemon began shutting down) before the
/// fixpoint converged; the partial result is discarded, never cached.
enum class ServiceStatus : uint8_t { Ok, Error, Overloaded, Timeout };

const char *serviceStatusName(ServiceStatus S);
bool parseServiceStatus(const std::string &Name, ServiceStatus &Out);

/// Deliberate, test-only faults in the *service* layer — the daemon's
/// transport, scheduling, and persistence tiers. Completes the repo's
/// fault-injection ladder (EngineFault / VerdictFault / LoweringFault one
/// level down): `specaid --inject-fault <name>` boots a daemon with one
/// rung armed, and the service_test fault matrix plus the CI chaos leg
/// prove every rung is contained — wrong-but-plausible behavior must
/// degrade to counted misses, explicit error statuses, or timeouts, never
/// to a wrong verdict or a wedged daemon. Never set outside tests.
enum class ServiceFault : uint8_t {
  None,
  /// Spill writes truncate mid-payload before the atomic rename — the
  /// on-disk image a kill -9 during a write would leave behind.
  SpillTruncate,
  /// Spill writes replace the payload with garbage bytes (bit rot, torn
  /// sector): the checksum trailer must reject it on read.
  SpillGarbage,
  /// Analysis workers stall past any request deadline before running the
  /// fixpoint: every budgeted request must still answer `timeout` within
  /// 2x its deadline while unbudgeted concurrent requests complete.
  WorkerStall,
  /// Analysis jobs throw after scheduling: waiters and coalesced
  /// duplicates must each get an error response, never hang.
  AnalysisThrow,
  /// The server's line-framing limit shrinks to 128 bytes, so ordinary
  /// requests exercise the oversized-request rejection path.
  OversizedRequest,
  /// Response writes dribble out a few bytes at a time with pauses: a
  /// slow consumer must not wedge other connections or shutdown.
  SlowClient,
};

const char *serviceFaultName(ServiceFault F);
/// Parses a service fault name; returns false on unknown names.
bool parseServiceFault(const std::string &Name, ServiceFault &Out);

/// One response line.
struct ServiceResponse {
  ServiceStatus Status = ServiceStatus::Error;
  uint64_t Id = 0;
  /// True when the verdict came from the cache (or coalesced onto an
  /// identical in-flight analysis) rather than a fresh fixpoint.
  bool Cached = false;
  /// Content-addressed cache key of the request (0 on errors).
  uint64_t RequestDigest = 0;
  /// Digest over the canonical verdict rendering; equal digests mean
  /// bit-identical counters and leak sites.
  uint64_t VerdictDigest = 0;
  std::string Error;

  // The condensed verdict (BatchRow counters).
  uint64_t AccessNodes = 0;
  uint64_t MissCount = 0;
  uint64_t SpMissCount = 0;
  uint64_t BranchCount = 0;
  uint64_t Iterations = 0;
  unsigned RefinementRounds = 1;
  bool Converged = true;
  bool LeaksChecked = false;
  uint64_t LeakCount = 0;
  uint64_t ProvenLeakFree = 0;
  /// Rendered per-site diagnostics, newline-joined on the wire.
  std::vector<std::string> LeakSites;
  /// Server-side analysis seconds (0 for cache hits); informational,
  /// excluded from the verdict digest.
  double Seconds = 0;

  // The repair verdict (`op: repair` responses only; every field below is
  // omitted from the wire and from sameVerdict comparisons when
  // RepairChecked is false, so analyze responses are byte-identical to
  // the pre-repair protocol).
  bool RepairChecked = false;
  /// Every reported leak site of the original program is proven leak-free
  /// by re-analysis of the patched program (vacuous when LeaksBefore==0).
  bool Repaired = false;
  uint64_t LeaksBefore = 0;
  uint64_t LeaksAfter = 0;
  uint64_t WcetBefore = 0;
  uint64_t WcetAfter = 0;
  /// Rendered applied mitigations (Mitigation::str), newline-joined on
  /// the wire like LeakSites.
  std::vector<std::string> Mitigations;
  /// The emitted patched program's IR rendering; equals the original
  /// program's rendering when nothing was applied.
  std::string PatchedIr;

  /// Builds an Ok response from a finished row (digests left 0 for the
  /// caller to fill).
  static ServiceResponse fromRow(const BatchRow &Row);

  /// True when both responses assert the same verdict (status, counters,
  /// leak sites — not timing, caching, or id metadata).
  bool sameVerdict(const ServiceResponse &RHS) const;

  std::string toJson() const;
  static bool fromJson(const std::string &Line, ServiceResponse &Out,
                       std::string &Error);
};

/// Digest over the canonical rendering of a finished row's verdict —
/// label-independent, so a service response and a single-shot CLI run of
/// the same request compare equal. Pinned by service_test.
uint64_t verdictDigest(const BatchRow &Row);

/// Digest over the canonical rendering of a repair verdict (the
/// RepairChecked fields, mitigations, and the patched IR). A repair
/// response's VerdictDigest carries this instead of verdictDigest().
uint64_t repairVerdictDigest(const ServiceResponse &R);

/// The content-addressed cache key: \p ProgramDigest (runRequest's FNV-1a
/// over the lowered IR) mixed with the request's option key.
uint64_t requestDigest(uint64_t ProgramDigest, const ServiceRequest &Req);

/// The collision-guard string stored next to each cache entry: requests
/// whose digests collide but whose keys differ are treated as misses.
std::string requestKeyString(uint64_t ProgramDigest,
                             const ServiceRequest &Req);

} // namespace specai

#endif // SPECAI_SERVICE_PROTOCOL_H
