//===- Json.cpp - Minimal flat JSON for the specaid protocol --------------===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//

#include "service/Json.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace specai;

std::string specai::jsonEscape(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size() + 8);
  for (unsigned char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

void JsonWriter::key(std::string_view Key) {
  if (!First)
    Out += ", ";
  First = false;
  Out += '"';
  Out += jsonEscape(Key);
  Out += "\": ";
}

void JsonWriter::field(std::string_view Key, std::string_view Value) {
  key(Key);
  Out += '"';
  Out += jsonEscape(Value);
  Out += '"';
}

void JsonWriter::field(std::string_view Key, bool Value) {
  key(Key);
  Out += Value ? "true" : "false";
}

void JsonWriter::field(std::string_view Key, int64_t Value) {
  key(Key);
  Out += std::to_string(Value);
}

void JsonWriter::field(std::string_view Key, uint64_t Value) {
  key(Key);
  Out += std::to_string(Value);
}

void JsonWriter::field(std::string_view Key, double Value) {
  key(Key);
  Out += formatDouble(Value, 6);
}

void JsonWriter::hexField(std::string_view Key, uint64_t Value) {
  key(Key);
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "\"0x%016llx\"",
                static_cast<unsigned long long>(Value));
  Out += Buf;
}

bool specai::parseHexU64(const std::string &Text, uint64_t &Out) {
  if (Text.size() < 3 || Text[0] != '0' || (Text[1] != 'x' && Text[1] != 'X'))
    return false;
  char *End = nullptr;
  Out = std::strtoull(Text.c_str() + 2, &End, 16);
  return End && *End == '\0';
}

namespace {

/// Cursor over the input with one-token-lookahead helpers. All failures
/// funnel through fail() so the error carries the byte offset.
class Parser {
public:
  Parser(std::string_view Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool parseObject(JsonObject &Out) {
    skipSpace();
    if (!expect('{'))
      return false;
    skipSpace();
    if (peek() == '}') {
      ++Pos;
    } else {
      while (true) {
        std::string Key;
        if (!parseString(Key))
          return false;
        skipSpace();
        if (!expect(':'))
          return false;
        JsonValue V;
        if (!parseValue(V))
          return false;
        if (!Out.emplace(std::move(Key), std::move(V)).second)
          return fail("duplicate key");
        skipSpace();
        if (peek() == ',') {
          ++Pos;
          skipSpace();
          continue;
        }
        if (!expect('}'))
          return false;
        break;
      }
    }
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing content after object");
    return true;
  }

private:
  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool fail(const std::string &What) {
    Error = "json: " + What + " at byte " + std::to_string(Pos);
    return false;
  }

  bool expect(char C) {
    if (peek() != C)
      return fail(std::string("expected '") + C + "'");
    ++Pos;
    return true;
  }

  bool parseValue(JsonValue &Out) {
    skipSpace();
    char C = peek();
    if (C == '"') {
      Out.K = JsonValue::Kind::String;
      return parseString(Out.S);
    }
    if (C == '{' || C == '[')
      return fail("nested values are not part of the flat protocol");
    if (C == 't' || C == 'f') {
      const std::string_view Word = C == 't' ? "true" : "false";
      if (Text.substr(Pos, Word.size()) != Word)
        return fail("malformed literal");
      Pos += Word.size();
      Out.K = JsonValue::Kind::Bool;
      Out.B = C == 't';
      return true;
    }
    if (C == 'n') {
      if (Text.substr(Pos, 4) != "null")
        return fail("malformed literal");
      Pos += 4;
      Out.K = JsonValue::Kind::Null;
      return true;
    }
    return parseNumber(Out);
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    bool IsDouble = false;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isdigit(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '.' || C == 'e' || C == 'E' || C == '+' || C == '-') {
        IsDouble = true;
        ++Pos;
      } else {
        break;
      }
    }
    if (Pos == Start)
      return fail("expected a value");
    std::string Num(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    if (IsDouble) {
      Out.K = JsonValue::Kind::Double;
      Out.D = std::strtod(Num.c_str(), &End);
    } else {
      Out.K = JsonValue::Kind::Int;
      Out.I = std::strtoll(Num.c_str(), &End, 10);
    }
    if (!End || *End != '\0')
      return fail("malformed number '" + Num + "'");
    return true;
  }

  bool parseString(std::string &Out) {
    skipSpace();
    if (!expect('"'))
      return false;
    Out.clear();
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("malformed \\u escape");
        }
        // The protocol writer only emits \u00XX for control bytes; decode
        // the basic-multilingual-plane code point as UTF-8 for generality.
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
  }

  std::string_view Text;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace

bool specai::parseJsonObject(std::string_view Text, JsonObject &Out,
                             std::string &Error) {
  Out.clear();
  return Parser(Text, Error).parseObject(Out);
}
