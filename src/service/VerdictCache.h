//===- VerdictCache.h - Sharded LRU cache of analysis verdicts --*- C++ -*-===//
//
// Part of the SpecAI project: a reproduction of "Abstract Interpretation
// under Speculative Execution" (Wu & Wang, PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The specaid daemon's verdict store (docs/SERVICE.md): a sharded
/// in-memory LRU map from content-addressed request digests to finished
/// ServiceResponse payloads, with an optional on-disk spill tier.
///
/// Entries are keyed by the 64-bit request digest but carry the full
/// canonical key string as a collision guard: a lookup whose key string
/// differs from the stored one is a miss, and the insert path refuses to
/// overwrite a live entry with a different key — a hash collision degrades
/// to a cache miss, never to a wrong verdict.
///
/// Sharding splits both the map and its mutex by digest bits, so worker
/// threads publishing verdicts do not serialize behind one lock. Capacity
/// is enforced per shard (an adversarial digest distribution can therefore
/// skew effective capacity, but bounds still hold). When a spill directory
/// is configured, evicted entries are written as three-line files — key,
/// response JSON, and a length+FNV-1a checksum trailer — via a temp file
/// and an atomic rename(), and lookups fall through to disk, promoting
/// hits back into memory.
///
/// Crash tolerance (docs/SERVICE.md, "Crash tolerance"): a kill -9 cannot
/// leave a half-written `.verdict` in place (writes land under a `.tmp`
/// name until the rename; construction sweeps orphaned temps), and any
/// file that fails the trailer check — truncation, garbage, a stale key —
/// degrades to a counted miss (`SpillCorrupt`) and is quarantined under a
/// `.corrupt` suffix rather than re-read forever. A corrupt spill entry
/// can cost a recomputation, never a wrong verdict.
///
//===----------------------------------------------------------------------===//

#ifndef SPECAI_SERVICE_VERDICTCACHE_H
#define SPECAI_SERVICE_VERDICTCACHE_H

#include "service/Protocol.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace specai {

/// Counter snapshot for the stats endpoint and tests.
struct VerdictCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t SpillWrites = 0;
  uint64_t SpillHits = 0;
  /// Spill files rejected by the integrity check (truncated, garbage,
  /// checksum mismatch, wrong key) and quarantined; each also counts as a
  /// plain miss for the lookup that found it.
  uint64_t SpillCorrupt = 0;
  uint64_t Entries = 0;
};

/// Thread-safe sharded LRU cache of ServiceResponse payloads.
class VerdictCache {
public:
  /// \p MaxEntries total across \p Shards shards (each shard holds at
  /// least one entry, so tiny capacities still cache). Empty \p SpillDir
  /// disables the disk tier; otherwise the directory must already exist —
  /// construction sweeps `.tmp` orphans a crashed writer left there.
  /// \p Fault arms a test-only spill fault rung (docs/SERVICE.md fault
  /// matrix); anything but SpillTruncate/SpillGarbage is ignored here.
  VerdictCache(uint64_t MaxEntries, unsigned Shards = 8,
               std::string SpillDir = "",
               ServiceFault Fault = ServiceFault::None);

  /// Looks up \p Digest, verifying \p Key against the stored collision
  /// guard. A hit promotes the entry to most-recently-used (re-inserting
  /// from disk if it had spilled) and copies the payload into \p Out.
  bool lookup(uint64_t Digest, const std::string &Key, ServiceResponse &Out);

  /// Publishes a finished verdict. Re-inserting an existing digest with
  /// the same key refreshes recency; with a different key (collision) the
  /// insert is dropped — first writer wins, and the loser stays correct
  /// by recomputing on every request.
  void insert(uint64_t Digest, const std::string &Key,
              const ServiceResponse &Payload);

  VerdictCacheStats stats() const;

private:
  struct Entry {
    uint64_t Digest = 0;
    std::string Key;
    ServiceResponse Payload;
  };

  struct Shard {
    mutable std::mutex Lock;
    /// Front = most recently used.
    std::list<Entry> Order;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> Index;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    uint64_t SpillWrites = 0;
    uint64_t SpillHits = 0;
    uint64_t SpillCorrupt = 0;
  };

  Shard &shardFor(uint64_t Digest) {
    // The low bits address cache sets in the digest's own producers, so
    // mix the high half in for shard selection.
    return *Shards[(Digest ^ (Digest >> 32)) % Shards.size()];
  }

  /// Must be called with the shard lock held.
  void insertLocked(Shard &S, uint64_t Digest, const std::string &Key,
                    const ServiceResponse &Payload);

  std::string spillPath(uint64_t Digest) const;
  void spillWrite(Shard &S, const Entry &E);
  bool spillRead(Shard &S, uint64_t Digest, const std::string &Key,
                 ServiceResponse &Out);

  std::vector<std::unique_ptr<Shard>> Shards;
  uint64_t PerShardCapacity;
  std::string SpillDir;
  ServiceFault Fault = ServiceFault::None;
};

} // namespace specai

#endif // SPECAI_SERVICE_VERDICTCACHE_H
